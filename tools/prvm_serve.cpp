// prvm_serve — the online placement daemon.
//
// Owns one Datacenter + score-table set and serves place/release/migrate
// requests over a JSON-lines socket protocol (Unix-domain or loopback
// TCP), with write-ahead logging and snapshots for crash recovery. See
// src/service/ for the moving parts and DESIGN.md §4 for the architecture.
//
//   prvm_serve --socket /tmp/prvm.sock --fleet 10000 --data-dir /var/lib/prvm
//
// Signals: SIGTERM/SIGINT trigger a graceful drain (stop accepting, flush
// the queue, final snapshot, exit 0). kill -9 is recovered on next start
// from snapshot + WAL replay. SIGUSR1 dumps the Prometheus exposition to
// stdout (poor-man's scrape without the HTTP listener).
//
// Observability (DESIGN.md §5): every service/engine/IO metric lives in the
// process-global registry. Scrape it three ways: the in-band `metrics`
// protocol op, the `--metrics-port` Prometheus HTTP listener, or the
// periodic `--stats-interval-s` human-readable line on stdout.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/catalog_graphs.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "service/io_env.hpp"
#include "service/service.hpp"
#include "service/socket_server.hpp"
#include "sim/simulator.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;
volatile std::sig_atomic_t g_dump_metrics = 0;

void handle_signal(int) { g_shutdown = 1; }

void handle_usr1(int) { g_dump_metrics = 1; }

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --socket PATH        listen on a Unix-domain socket (default /tmp/prvm.sock)\n"
      << "  --port N             listen on loopback TCP instead (0 = ephemeral)\n"
      << "  --fleet N            PM fleet size, alternating EC2 M3/C3 (default 10000)\n"
      << "  --data-dir PATH      WAL + snapshot directory; omit for an ephemeral daemon\n"
      << "  --batch K            max requests per engine pass (default 64)\n"
      << "  --queue N            request queue capacity (default 4096)\n"
      << "  --snapshot-every N   snapshot after N mutating ops (default 100000; 0 = drain only)\n"
      << "  --parallel-workers N speculate place decisions on N engine clones per batch\n"
      << "                       (default 0 = fully serial worker; results are identical)\n"
      << "  --flush-group N      WAL group commit: a flusher thread makes batches durable,\n"
      << "                       one write/fsync per up to N ops, while the worker computes\n"
      << "                       the next batch (default 0 = inline flush; must be >= batch)\n"
      << "  --fsync              fsync the WAL every batch (power-loss durability)\n"
      << "  --fault-schedule S   inject IO faults per the schedule spec (see io_env.hpp);\n"
      << "                       defaults to $PRVM_FAULT_SCHEDULE when set\n"
      << "  --probe-initial-ms N initial storage-probe backoff while degraded (default 100)\n"
      << "  --probe-max-ms N     max storage-probe backoff while degraded (default 5000)\n"
      << "  --metrics-port N     serve Prometheus text exposition on 127.0.0.1:N\n"
      << "                       (0 = ephemeral; the bound port is printed at startup)\n"
      << "  --stats-interval-s N print a human-readable stats line every N seconds\n"
      << "  --cache-dir PATH     score-table cache (default $PRVM_CACHE_DIR or .prvm-cache);\n"
      << "                       shared with the bench/experiment harness, so a warm cache\n"
      << "                       makes startup skip the expensive table build\n"
      << "  --score-image DIR    serve score tables from read-only mmap images under DIR\n"
      << "                       (written on first use); N cell daemons of one host then\n"
      << "                       share a single physical copy of each table\n"
      << "  --cell-id N          identity within a multi-cell deployment: health reports\n"
      << "                       cell_id N with role \"cell\" (omit for a standalone daemon)\n"
      << "  --replica SPEC       stream the WAL to a follower at unix:PATH or tcp:PORT\n"
      << "                       (repeat once per follower; this daemon becomes a leader)\n"
      << "  --ack-replicas N     hold client acks until N followers confirmed the frames\n"
      << "                       (ack_after_replicated durability; default 0 = best effort)\n"
      << "  --repl-timeout-ms N  follower ack wait before demoting to not_replicated\n"
      << "                       (default 2000)\n"
      << "  --follower           start as a follower: apply the leader's stream, serve\n"
      << "                       reads, reject mutations with not_leader until promoted\n"
      << "  --leader-hint SPEC   leader endpoint advertised in not_leader rejections\n"
      << "  --rebalance          run the online rebalancer: a background planner drains\n"
      << "                       overloaded PMs via WAL-durable internal migrations,\n"
      << "                       fed by `util` protocol samples (DESIGN.md §9)\n"
      << "  --overload F         hottest-dimension utilization above which a PM is\n"
      << "                       drained, and the cap migration destinations must stay\n"
      << "                       under (default 0.9, the simulator's threshold)\n"
      << "  --underload F        consolidate PMs at or below this away entirely\n"
      << "                       (default 0.2; must stay below --overload)\n"
      << "  --rebalance-interval-ms N  planner round cadence (default 1000)\n"
      << "  --max-moves N        migration budget per planner round (default 8)\n"
      << "  --rebalance-cooldown-ms N  per-VM re-migration cooldown (default 5000)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prvm;

  std::string socket_path = "/tmp/prvm.sock";
  bool use_tcp = false;
  int tcp_port = 0;
  std::size_t fleet = 10000;
  std::optional<int> metrics_port;
  unsigned stats_interval_s = 0;
  ServiceConfig config;
  config.snapshot_every_ops = 100000;
  std::optional<std::filesystem::path> cache_dir;
  std::optional<std::filesystem::path> score_image_dir;
  const char* env_schedule = std::getenv("PRVM_FAULT_SCHEDULE");
  std::string fault_schedule = env_schedule != nullptr ? env_schedule : "";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
      use_tcp = false;
    } else if (arg == "--port") {
      tcp_port = std::stoi(value());
      use_tcp = true;
    } else if (arg == "--fleet") {
      fleet = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--data-dir") {
      config.data_dir = value();
    } else if (arg == "--batch") {
      config.batch_size = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--queue") {
      config.queue_capacity = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--snapshot-every") {
      config.snapshot_every_ops = std::stoull(value());
    } else if (arg == "--parallel-workers") {
      config.parallel_workers = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--flush-group") {
      config.flush_group_max = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--fsync") {
      config.fsync_wal = true;
    } else if (arg == "--fault-schedule") {
      fault_schedule = value();
    } else if (arg == "--probe-initial-ms") {
      config.probe_initial_ms = std::stoull(value());
    } else if (arg == "--probe-max-ms") {
      config.probe_max_ms = std::stoull(value());
    } else if (arg == "--cache-dir") {
      cache_dir = value();
    } else if (arg == "--score-image") {
      score_image_dir = value();
    } else if (arg == "--cell-id") {
      config.cell_id = std::stoull(value());
    } else if (arg == "--replica") {
      config.repl.replicas.push_back(value());
    } else if (arg == "--ack-replicas") {
      config.repl.ack_replicas = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--repl-timeout-ms") {
      config.repl.ack_timeout_ms = std::stoull(value());
    } else if (arg == "--follower") {
      config.repl.follower = true;
    } else if (arg == "--leader-hint") {
      config.repl.leader_hint = value();
    } else if (arg == "--rebalance") {
      config.rebalance.enabled = true;
    } else if (arg == "--overload") {
      config.rebalance.overload_threshold = std::stod(value());
    } else if (arg == "--underload") {
      config.rebalance.underload_threshold = std::stod(value());
    } else if (arg == "--rebalance-interval-ms") {
      config.rebalance.interval_ms = std::stoull(value());
    } else if (arg == "--max-moves") {
      config.rebalance.max_moves_per_round = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--rebalance-cooldown-ms") {
      config.rebalance.cooldown_ms = std::stoull(value());
    } else if (arg == "--metrics-port") {
      metrics_port = std::stoi(value());
    } else if (arg == "--stats-interval-s") {
      stats_interval_s = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  try {
    // One registry for the whole process: service pipeline, engine,
    // instrumented IO and the score-table cache all report here, and both
    // exposition paths (metrics op, Prometheus listener) render it.
    config.metrics = obs::global_registry_ptr();
    if (!fault_schedule.empty()) {
      config.io_env = io_env_from_spec(fault_schedule);
      std::cout << "prvm_serve: FAULT INJECTION ACTIVE: " << fault_schedule << std::endl;
    }
    const Catalog catalog = ec2_sim_catalog();
    // The daemon shares the experiment harness's score-table cache (see
    // Ec2ExperimentConfig::cache_dir): a warm cache turns the seconds-long
    // table build into a file load. With --score-image the tables are
    // instead served from mmap-shared read-only images, so N cell daemons
    // on one host keep a single physical copy.
    std::shared_ptr<const ScoreTableSet> tables;
    if (score_image_dir.has_value()) {
      ScoreImageReport report;
      tables = std::make_shared<const ScoreTableSet>(
          mapped_score_tables(catalog, *score_image_dir, {}, &report));
      std::cout << "prvm_serve: score tables from image dir " << *score_image_dir
                << " (" << report.mapped << " mapped, " << report.written
                << " written";
      if (report.fallback > 0) {
        std::cout << ", " << report.fallback << " FELL BACK to private memory";
      }
      std::cout << ")\n";
    } else {
      tables = std::make_shared<const ScoreTableSet>(
          build_score_tables(catalog, {}, cache_dir.value_or(default_cache_dir())));
    }

    PlacementService service(catalog, mixed_pm_fleet(catalog, fleet), tables, config);
    const ServiceStats boot = service.stats();
    if (boot.recovered) {
      std::cout << "prvm_serve: recovered " << service.datacenter().vm_count()
                << " VMs on " << service.datacenter().used_count() << " used PMs ("
                << boot.replayed_records << " WAL records replayed"
                << (boot.wal_torn_tail ? ", torn tail discarded" : "") << ")\n";
    }
    service.start();
    if (config.repl.follower) {
      std::cout << "prvm_serve: FOLLOWER (mutations rejected with not_leader"
                << (config.repl.leader_hint.empty()
                        ? std::string()
                        : ", leader hint " + config.repl.leader_hint)
                << ")\n";
    } else if (!config.repl.replicas.empty()) {
      std::cout << "prvm_serve: LEADER replicating to " << config.repl.replicas.size()
                << " follower(s), ack_replicas=" << config.repl.ack_replicas << "\n";
    }
    if (config.rebalance.enabled) {
      std::cout << "prvm_serve: REBALANCER on (overload "
                << config.rebalance.overload_threshold << ", underload "
                << config.rebalance.underload_threshold << ", every "
                << config.rebalance.interval_ms << " ms, max "
                << config.rebalance.max_moves_per_round << " moves/round)\n";
    }

    SocketServerConfig socket_config;
    if (use_tcp) {
      socket_config.tcp_port = tcp_port;
    } else {
      socket_config.unix_path = socket_path;
    }
    // A follower's inbound stream carries repl_snap / repl_frames lines far
    // larger than client requests; raise the per-connection frame cap.
    if (config.repl.follower) socket_config.max_frame = kMaxReplFrameBytes;
    SocketServer server(service, socket_config);
    server.start();
    if (use_tcp) {
      std::cout << "prvm_serve: listening on 127.0.0.1:" << server.port() << std::endl;
    } else {
      std::cout << "prvm_serve: listening on " << socket_path << std::endl;
    }

    std::unique_ptr<obs::ExpositionServer> exposition;
    if (metrics_port.has_value()) {
      exposition = std::make_unique<obs::ExpositionServer>(
          [] { return obs::Registry::global().render_prometheus(); }, *metrics_port);
      exposition->start();
      std::cout << "prvm_serve: metrics on 127.0.0.1:" << exposition->port() << std::endl;
    }

    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGUSR1, handle_usr1);
    auto next_stats = std::chrono::steady_clock::now() + std::chrono::seconds(stats_interval_s);
    while (g_shutdown == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (g_dump_metrics != 0) {
        g_dump_metrics = 0;
        std::cout << obs::Registry::global().render_prometheus() << std::flush;
      }
      if (stats_interval_s > 0 && std::chrono::steady_clock::now() >= next_stats) {
        next_stats += std::chrono::seconds(stats_interval_s);
        const ServiceStats s = service.stats();
        obs::Registry& reg = obs::Registry::global();
        const auto p99_us = [&reg](const char* name) {
          const obs::Histogram* h = reg.find_histogram(name);
          return h != nullptr ? h->snapshot().quantile(0.99) / 1000.0 : 0.0;
        };
        const obs::Gauge* lag = reg.find_gauge("prvm_wal_lag");
        std::printf(
            "prvm_serve: op_seq=%llu placed=%llu released=%llu migrated=%llu rejected=%llu "
            "mode=%s wal_lag=%lld queue_wait_p99_us=%.1f place_p99_us=%.1f "
            "wal_flush_p99_us=%.1f\n",
            static_cast<unsigned long long>(s.op_seq),
            static_cast<unsigned long long>(s.placed),
            static_cast<unsigned long long>(s.released),
            static_cast<unsigned long long>(s.migrated),
            static_cast<unsigned long long>(s.rejected),
            s.degraded ? "degraded" : "ok",
            static_cast<long long>(lag != nullptr ? lag->value() : 0),
            p99_us("prvm_queue_wait_ns"), p99_us("prvm_place_compute_ns"),
            p99_us("prvm_wal_flush_ns"));
        std::fflush(stdout);
      }
    }

    std::cout << "prvm_serve: draining..." << std::endl;
    server.stop();      // no new requests
    service.drain();    // flush the queue, final snapshot, truncate WAL
    const ServiceStats stats = service.stats();
    std::cout << "prvm_serve: drained at op_seq " << stats.op_seq << " ("
              << stats.placed << " placed, " << stats.released << " released, "
              << stats.migrated << " migrated)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "prvm_serve: fatal: " << e.what() << "\n";
    return 1;
  }
}
