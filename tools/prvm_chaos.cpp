// prvm_chaos — randomized storage-fault and crash harness for prvm_serve.
//
// Drives a live daemon through seeded rounds of place/release traffic while
// injecting storage faults (--fault-schedule), killing it mid-flight
// (SIGKILL) or draining it (SIGTERM), restarting it against the same data
// dir, and differentially verifying at the end — against a fault-free
// boot — that every acknowledged mutation survived. Fully reproducible:
// one --seed fixes the fault schedules, the workload and the kill timing.
//
//   prvm_chaos --serve build/tools/prvm_serve --seed 42 --rounds 3 --ops 250
//
// Correctness model (DESIGN.md §4d): an acknowledged mutation must be
// durable across kill -9. A request answered queue_full/degraded_storage is
// retried until the outcome is definitive — a *retried* place answered
// duplicate_vm was applied by an earlier attempt, a retried release
// answered unknown_vm likewise. Requests whose connection died mid-flight
// or that exhausted retries while degraded are "limbo": the daemon may or
// may not have applied them, so verification accepts either state for them.
//
// --replicated switches to the failover model (DESIGN.md §8): each round
// runs a leader with --replica --ack-replicas 1 streaming to a live
// follower, churns grouped and ungrouped traffic, SIGKILLs the leader
// mid-flight, promotes the follower over a raw socket, and verifies that
// every *acked* op is present and IDENTICAL (same PM) on the promoted
// follower, that anti-collocation groups stay pairwise-distinct, and that
// leader/follower state digests matched at the pre-kill quiesce point.
// Rounds swap roles: the promoted follower's data dir becomes the next
// leader's, the old leader's dir is wiped so the fresh follower exercises
// snapshot catch-up. In this mode a retried mutation answered
// duplicate_vm/unknown_vm is LIMBO, not applied: the earlier attempt
// reached the leader but its replication is unknown, and the leader is
// about to die.
//
// --rebalance switches to the online-rebalancer model (DESIGN.md §9): each
// round boots the daemon with the background migration planner enabled at
// an aggressive interval, packs a small fleet with grouped and ungrouped
// VMs, feeds a skewed utilization picture (one PM driven hot, the rest
// cool) so the planner migrates continuously, and SIGKILLs the daemon
// mid-migration on alternating rounds. Verified differentially: every
// acked placement survives (planner moves relocate VMs, never lose them),
// no anti-collocation group is ever collocated — live or recovered — and
// two consecutive fault-free boots of the final state report identical
// state digests, so every migration that reached the ledger was
// WAL-durable rather than an in-memory side effect.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/rng.hpp"
#include "service/protocol.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string serve_binary;
  std::uint64_t seed = 42;
  std::size_t rounds = 3;
  std::size_t ops_per_round = 250;
  /// 0 = auto: 400 for the storage/replicated modes, 24 for --rebalance
  /// (a hotspot needs a fleet small enough for placements to pack).
  std::size_t fleet = 0;
  std::string data_dir;  ///< defaults to a fresh directory under /tmp
  /// Extra flags appended verbatim to every prvm_serve invocation
  /// (--serve-arg, repeatable) — e.g. --parallel-workers / --flush-group to
  /// chaos-test the parallel pipeline under the same fault schedules.
  std::vector<std::string> serve_args;
  /// Leader/follower failover mode: ack_after_replicated churn with a
  /// mid-round leader SIGKILL and promotion of the follower.
  bool replicated = false;
  /// Online-rebalancer mode: planner-driven migrations under a skewed
  /// utilization feed with mid-migration SIGKILLs.
  bool rebalance = false;
};

// ---------------------------------------------------------------------------
// Synchronous JSON-lines client. Connection loss throws; the caller decides
// whether that was an expected kill or a daemon crash.

class Client {
 public:
  ~Client() { disconnect(); }

  bool connect_to(const std::string& path) {
    disconnect();
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      disconnect();
      return false;
    }
    return true;
  }

  void disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    frames_ = LineBuffer();
  }

  bool connected() const { return fd_ >= 0; }

  JsonValue request(const std::string& line) {
    std::size_t written = 0;
    while (written < line.size()) {
      const ::ssize_t n = ::send(fd_, line.data() + written, line.size() - written, MSG_NOSIGNAL);
      if (n <= 0) throw std::runtime_error("connection lost while sending");
      written += static_cast<std::size_t>(n);
    }
    while (true) {
      if (const auto frame = frames_.next()) {
        if (frame->oversized) continue;
        std::string error;
        auto doc = parse_json(frame->line, &error);
        if (!doc.has_value()) throw std::runtime_error("bad response: " + error);
        return std::move(*doc);
      }
      char buf[16 * 1024];
      const ::ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) throw std::runtime_error("connection closed by daemon");
      frames_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  LineBuffer frames_;
};

double field_number(const JsonValue& doc, const char* key) {
  const JsonValue* value = doc.find(key);
  return value != nullptr && value->kind == JsonValue::Kind::kNumber ? value->number : 0.0;
}

std::string field_string(const JsonValue& doc, const char* key) {
  const JsonValue* value = doc.find(key);
  return value != nullptr && value->kind == JsonValue::Kind::kString ? value->string : "";
}

bool field_ok(const JsonValue& doc) {
  const JsonValue* ok = doc.find("ok");
  return ok != nullptr && ok->kind == JsonValue::Kind::kBool && ok->boolean;
}

// ---------------------------------------------------------------------------
// Daemon process control.

pid_t spawn(const std::vector<std::string>& args, const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      ::close(fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

/// Non-blocking-poll wait with a deadline; nullopt = still running.
std::optional<int> wait_exit(pid_t pid, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (r < 0) return std::nullopt;  // already reaped / no such child
    if (Clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

bool still_running(pid_t pid) {
  int status = 0;
  return ::waitpid(pid, &status, WNOHANG) == 0;
}

/// Waits until the daemon accepts connections (score-table build on a cold
/// cache can take a while on first boot) or the process exits early.
bool wait_ready(Client& client, const std::string& socket_path, pid_t pid, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (client.connect_to(socket_path)) return true;
    if (!still_running(pid)) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

// ---------------------------------------------------------------------------
// Fault-schedule themes. All error rules are count-limited so every round's
// fault eventually clears and the daemon can recover while traffic retries.

/// A round's fault schedule plus what it predicts: once the daemon has made
/// `fire_threshold` calls to `op_name`, the injector MUST have fired at
/// least once. Observed call counts come from the prvm_io_<op>_ns
/// histograms, which sit outside the injector, so they never overcount its
/// per-op call sequence.
struct FaultPlan {
  std::string spec;              ///< --fault-schedule value; empty = fault-free
  std::string op_name;           ///< instrumented op the trigger watches
  std::uint64_t fire_threshold;  ///< calls after which injected >= 1 must hold
};

FaultPlan schedule_for_round(std::size_t round, Rng& rng) {
  const std::uint64_t seed = rng.uniform_int(1, 1 << 30);
  const std::string tail = ";seed=" + std::to_string(seed);
  switch (round % 6) {
    case 0:
      return {"", "", 0};  // baseline: crash/drain behaviour without storage faults
    case 1: {  // disk fills up mid-run, then frees
      const std::uint64_t after = rng.uniform_int(5, 12);
      return {"write:after=" + std::to_string(after) +
                  ":errno=ENOSPC:count=" + std::to_string(rng.uniform_int(4, 10)) + tail,
              "write", after + 1};
    }
    case 2: {  // flaky fsync
      const std::uint64_t every = rng.uniform_int(2, 5);
      return {"fsync:every=" + std::to_string(every) +
                  ":errno=EIO:count=" + std::to_string(rng.uniform_int(3, 8)) + tail,
              "fsync", every};
    }
    case 3:  // torn/short writes plus an EINTR storm
      return {"write:every=3:short=0.5:count=25;write:every=2:errno=EINTR:count=40" + tail,
              "write", 2};
    case 4:  // snapshot rename fails a few times
      return {"rename:nth=1:errno=EACCES:count=" + std::to_string(rng.uniform_int(1, 3)) + tail,
              "rename", 1};
    default: {  // slow storage: fsync latency, no errors
      const std::uint64_t every = 2;
      return {"fsync:every=" + std::to_string(every) +
                  ":delay_ms=" + std::to_string(rng.uniform_int(5, 20)) + ":count=30" + tail,
              "fsync", every};
    }
  }
}

// ---------------------------------------------------------------------------
// Metrics cross-check: after each surviving round, scrape the in-band
// `metrics` op and assert the observability counters are consistent with
// the fault schedule the round actually applied.

double metric_number(const JsonValue& metrics, const char* group, const std::string& name,
                     const char* field = nullptr) {
  const JsonValue* g = metrics.find(group);
  const JsonValue* m = g != nullptr ? g->find(name) : nullptr;
  if (m == nullptr) return 0.0;
  if (field != nullptr) m = m->find(field);
  return m != nullptr && m->kind == JsonValue::Kind::kNumber ? m->number : 0.0;
}

std::size_t check_round_metrics(Client& client, const FaultPlan& plan, std::size_t round) {
  std::size_t mismatches = 0;
  const JsonValue doc = client.request("{\"op\":\"metrics\"}\n");
  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kObject) {
    std::cerr << "prvm_chaos: METRICS FAIL: metrics op returned no metrics object (round "
              << round + 1 << ")\n";
    return 1;
  }
  const double injected = metric_number(*metrics, "counters", "prvm_io_injected_faults_total");
  const double transitions =
      metric_number(*metrics, "counters", "prvm_degraded_transitions_total");

  // The health response predates the registry; its degraded_entries counter
  // was migrated onto prvm_degraded_transitions_total and must stay equal.
  const JsonValue health = client.request("{\"op\":\"health\"}\n");
  const double entries = field_number(health, "degraded_entries");
  if (entries != transitions) {
    std::cerr << "prvm_chaos: METRICS FAIL: health degraded_entries=" << entries
              << " != prvm_degraded_transitions_total=" << transitions << " (round "
              << round + 1 << ")\n";
    ++mismatches;
  }

  if (plan.spec.empty()) {
    if (injected != 0) {
      std::cerr << "prvm_chaos: METRICS FAIL: " << injected
                << " injected faults reported in a fault-free round " << round + 1 << "\n";
      ++mismatches;
    }
  } else {
    const double calls =
        metric_number(*metrics, "histograms", "prvm_io_" + plan.op_name + "_ns", "count");
    if (calls >= static_cast<double>(plan.fire_threshold) && injected < 1) {
      std::cerr << "prvm_chaos: METRICS FAIL: " << calls << " " << plan.op_name
                << " calls observed (trigger at " << plan.fire_threshold
                << ") but prvm_io_injected_faults_total=0 (round " << round + 1 << ")\n";
      ++mismatches;
    }
    const double by_op =
        metric_number(*metrics, "counters", "prvm_io_injected_" + plan.op_name + "_total");
    if (by_op > injected) {
      std::cerr << "prvm_chaos: METRICS FAIL: per-op injected count " << by_op
                << " exceeds total " << injected << " (round " << round + 1 << ")\n";
      ++mismatches;
    }
  }
  return mismatches;
}

// ---------------------------------------------------------------------------
// Harness state: what the daemon acknowledged, and what is in limbo.

struct Ledger {
  std::unordered_set<std::uint64_t> present;   ///< acked placed, not released
  std::unordered_set<std::uint64_t> released;  ///< acked released
  std::unordered_set<std::uint64_t> limbo;     ///< outcome unknown (either state ok)
  std::size_t retries = 0;
  std::size_t rejected = 0;

  void mark_limbo(std::uint64_t vm) {
    present.erase(vm);
    released.erase(vm);
    limbo.insert(vm);
  }
};

enum class OpResult { kApplied, kRejected, kLimbo };

/// One mutating request, retried until definitive. Throws on connection
/// loss (the caller marks the vm limbo). In `replicated` mode an op applied
/// by an earlier, un-acked attempt is limbo, not applied: it reached the
/// leader but its replication state is unknown and the leader will die.
/// `pm_out`, when non-null, receives the acked placement's PM index.
OpResult run_op(Client& client, const std::string& line, bool is_place, Rng& rng,
                Ledger& ledger, bool replicated = false, double* pm_out = nullptr) {
  for (std::uint32_t attempt = 0; attempt < 15; ++attempt) {
    const JsonValue doc = client.request(line);
    if (field_ok(doc)) {
      if (pm_out != nullptr) *pm_out = field_number(doc, "pm");
      return OpResult::kApplied;
    }
    const std::string reason = field_string(doc, "error");
    if (attempt > 0 && ((is_place && reason == "duplicate_vm") ||
                        (!is_place && reason == "unknown_vm"))) {
      // An earlier attempt was actually applied.
      return replicated ? OpResult::kLimbo : OpResult::kApplied;
    }
    if (replicated && reason == "not_replicated") {
      // Applied + durable on the leader, quorum not met: unknowable on the
      // follower that is about to be promoted.
      return OpResult::kLimbo;
    }
    if (reason == "queue_full" || reason == "degraded_storage") {
      ++ledger.retries;
      double delay = std::max(field_number(doc, "retry_after_ms"), 1.0) *
                     static_cast<double>(1u << std::min(attempt, 6u));
      delay = std::min(delay, 500.0) * rng.uniform(0.75, 1.25);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
      continue;
    }
    return OpResult::kRejected;
  }
  return OpResult::kLimbo;  // still degraded after all retries: unknowable
}

std::string place_line(std::uint64_t vm, std::size_t type, const std::string& group = "") {
  std::string line = "{\"op\":\"place\",\"vm\":" + std::to_string(vm) +
                     ",\"type\":" + std::to_string(type);
  if (!group.empty()) line += ",\"group\":\"" + group + "\"";
  return line + "}\n";
}

std::string release_line(std::uint64_t vm) {
  return "{\"op\":\"release\",\"vm\":" + std::to_string(vm) + "}\n";
}

std::string lookup_line(std::uint64_t vm) {
  return "{\"op\":\"lookup\",\"vm\":" + std::to_string(vm) + "}\n";
}

/// Differential check against a (fault-free) daemon: every acked placement
/// resolves, every acked release does not, limbo VMs may be either.
std::size_t verify_ledger(Client& client, const Ledger& ledger) {
  std::size_t mismatches = 0;
  for (const std::uint64_t vm : ledger.present) {
    const JsonValue doc = client.request(lookup_line(vm));
    if (!field_ok(doc)) {
      std::cerr << "prvm_chaos: VERIFY FAIL: acked placement of vm " << vm
                << " missing after recovery\n";
      ++mismatches;
    }
  }
  for (const std::uint64_t vm : ledger.released) {
    const JsonValue doc = client.request(lookup_line(vm));
    if (field_ok(doc)) {
      std::cerr << "prvm_chaos: VERIFY FAIL: acked release of vm " << vm
                << " resurfaced after recovery\n";
      ++mismatches;
    }
  }
  return mismatches;
}

void dump_log_tail(const std::string& log_path) {
  std::cerr << "--- daemon log tail (" << log_path << ") ---\n";
  // Best effort: print the last ~2KB.
  const int fd = ::open(log_path.c_str(), O_RDONLY);
  if (fd < 0) return;
  const off_t size = ::lseek(fd, 0, SEEK_END);
  const off_t start = size > 2048 ? size - 2048 : 0;
  ::lseek(fd, start, SEEK_SET);
  char buf[2049];
  const ::ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n > 0) {
    buf[n] = '\0';
    std::cerr << buf << "\n";
  }
}

int run(const Options& options) {
  namespace fs = std::filesystem;
  Rng rng(options.seed);

  fs::path dir = options.data_dir.empty()
                     ? fs::temp_directory_path() / ("prvm-chaos-" + std::to_string(options.seed) +
                                                    "-" + std::to_string(::getpid()))
                     : fs::path(options.data_dir);
  fs::create_directories(dir);
  const std::string socket_path = (dir / "chaos.sock").string();
  const std::string log_path = (dir / "daemon.log").string();

  const Catalog catalog = ec2_sim_catalog();
  const std::vector<double> mix = default_vm_mix(catalog);

  Ledger ledger;
  std::uint64_t next_vm = 1;
  bool saw_degraded = false;
  bool saw_recovery = false;
  std::size_t crashes_injected = 0;
  std::size_t metric_mismatches = 0;
  std::size_t metric_rounds_checked = 0;

  const auto daemon_args = [&](const std::string& schedule) {
    std::vector<std::string> args = {
        options.serve_binary, "--socket", socket_path, "--data-dir", dir.string(),
        "--fleet", std::to_string(options.fleet), "--fsync", "--snapshot-every", "200",
        "--batch", "16", "--probe-initial-ms", "50", "--probe-max-ms", "400"};
    args.insert(args.end(), options.serve_args.begin(), options.serve_args.end());
    if (!schedule.empty()) {
      args.push_back("--fault-schedule");
      args.push_back(schedule);
    }
    return args;
  };

  for (std::size_t round = 0; round < options.rounds; ++round) {
    const FaultPlan plan = schedule_for_round(round, rng);
    const std::string& schedule = plan.spec;
    const bool hard_kill = (round % 2) == 1;
    std::cout << "prvm_chaos: round " << (round + 1) << "/" << options.rounds
              << (hard_kill ? " [SIGKILL]" : " [SIGTERM]")
              << (schedule.empty() ? "" : " faults=" + schedule) << "\n";

    const pid_t pid = spawn(daemon_args(schedule), log_path);
    Client client;
    if (!wait_ready(client, socket_path, pid, 300'000)) {
      std::cerr << "prvm_chaos: daemon did not come up (round " << round + 1 << ")\n";
      dump_log_tail(log_path);
      ::kill(pid, SIGKILL);
      wait_exit(pid, 5'000);
      return 1;
    }

    // Spot-check recovery of earlier rounds' state before adding load.
    {
      std::size_t sampled = 0;
      for (const std::uint64_t vm : ledger.present) {
        if (++sampled > 50) break;
        if (!field_ok(client.request(lookup_line(vm)))) {
          std::cerr << "prvm_chaos: VERIFY FAIL: vm " << vm << " lost across restart (round "
                    << round + 1 << ")\n";
          dump_log_tail(log_path);
          ::kill(pid, SIGKILL);
          wait_exit(pid, 5'000);
          return 1;
        }
      }
    }

    // Mid-round killer: fires while requests are in flight.
    std::atomic<bool> kill_sent{false};
    std::thread killer;
    if (hard_kill) {
      const int delay_ms = rng.uniform_int(50, 400);
      killer = std::thread([pid, delay_ms, &kill_sent] {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        kill_sent.store(true);
        ::kill(pid, SIGKILL);
      });
      ++crashes_injected;
    }

    // Traffic. Any connection loss here is only acceptable if WE killed it.
    bool connection_lost = false;
    std::vector<std::uint64_t> live(ledger.present.begin(), ledger.present.end());
    for (std::size_t op = 0; op < options.ops_per_round; ++op) {
      const bool do_place = live.empty() || rng.chance(0.6);
      const std::uint64_t vm = do_place ? next_vm++ : [&] {
        const std::size_t pick = rng.uniform_index(live.size());
        const std::uint64_t victim = live[pick];
        live[pick] = live.back();
        live.pop_back();
        return victim;
      }();
      const std::string line =
          do_place ? place_line(vm, rng.weighted_index(mix)) : release_line(vm);
      try {
        switch (run_op(client, line, do_place, rng, ledger)) {
          case OpResult::kApplied:
            if (do_place) {
              ledger.present.insert(vm);
              live.push_back(vm);
            } else {
              ledger.present.erase(vm);
              ledger.released.insert(vm);
            }
            break;
          case OpResult::kRejected:
            ++ledger.rejected;
            if (!do_place) live.push_back(vm);  // release refused; still placed
            break;
          case OpResult::kLimbo:
            ledger.mark_limbo(vm);
            break;
        }
        if (op % 25 == 24) {
          const JsonValue health = client.request("{\"op\":\"health\"}\n");
          const std::string mode = field_string(health, "mode");
          if (mode == "degraded") saw_degraded = true;
          else if (saw_degraded && mode == "ok") saw_recovery = true;
        }
      } catch (const std::exception&) {
        ledger.mark_limbo(vm);
        connection_lost = true;
        break;
      }
    }

    // Metrics cross-check while the round's daemon is still up. In a
    // hard-kill round the SIGKILL can race the scrape, so connection loss
    // there is expected; un-killed it is the same protocol violation the
    // drain path reports below.
    if (!connection_lost && client.connected()) {
      try {
        metric_mismatches += check_round_metrics(client, plan, round);
        ++metric_rounds_checked;
      } catch (const std::exception&) {
        if (!hard_kill) connection_lost = true;
      }
    }
    client.disconnect();

    if (hard_kill) {
      killer.join();
      const auto status = wait_exit(pid, 30'000);
      if (!status.has_value()) {
        std::cerr << "prvm_chaos: daemon survived SIGKILL?!\n";
        return 1;
      }
    } else {
      if (connection_lost && !kill_sent.load()) {
        std::cerr << "prvm_chaos: daemon dropped the connection un-killed (round "
                  << round + 1 << ")\n";
        dump_log_tail(log_path);
        wait_exit(pid, 5'000);
        return 1;
      }
      ::kill(pid, SIGTERM);
      auto status = wait_exit(pid, 120'000);
      if (!status.has_value()) {
        std::cerr << "prvm_chaos: drain timed out; killing\n";
        ::kill(pid, SIGKILL);
        wait_exit(pid, 5'000);
        ++crashes_injected;
      } else if (!WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
        // Storage faults must degrade the daemon, never make the drain fail.
        std::cerr << "prvm_chaos: daemon exited " << *status << " on SIGTERM drain\n";
        dump_log_tail(log_path);
        return 1;
      }
    }
  }

  // Final differential verification against a fault-free boot.
  std::cout << "prvm_chaos: verifying " << ledger.present.size() << " placements, "
            << ledger.released.size() << " releases (" << ledger.limbo.size()
            << " limbo ignored)\n";
  const pid_t pid = spawn(daemon_args(""), log_path);
  Client client;
  if (!wait_ready(client, socket_path, pid, 300'000)) {
    std::cerr << "prvm_chaos: verification daemon did not come up\n";
    dump_log_tail(log_path);
    ::kill(pid, SIGKILL);
    wait_exit(pid, 5'000);
    return 1;
  }
  std::size_t mismatches = 0;
  try {
    const JsonValue health = client.request("{\"op\":\"health\"}\n");
    if (field_string(health, "mode") != "ok") {
      std::cerr << "prvm_chaos: VERIFY FAIL: fault-free boot reports mode="
                << field_string(health, "mode") << "\n";
      ++mismatches;
    }
    mismatches += verify_ledger(client, ledger);
    // The fault-free boot must report a clean registry: no injected faults.
    mismatches += check_round_metrics(client, FaultPlan{"", "", 0}, options.rounds);
  } catch (const std::exception& e) {
    std::cerr << "prvm_chaos: verification connection failed: " << e.what() << "\n";
    ++mismatches;
  }
  client.disconnect();
  ::kill(pid, SIGTERM);
  const auto status = wait_exit(pid, 120'000);
  if (!status.has_value() || !WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
    std::cerr << "prvm_chaos: verification daemon failed to drain cleanly\n";
    if (!status.has_value()) ::kill(pid, SIGKILL);
    ++mismatches;
  }

  mismatches += metric_mismatches;
  std::cout << "prvm_chaos: " << (mismatches == 0 ? "PASS" : "FAIL") << " seed="
            << options.seed << " rounds=" << options.rounds << " placed="
            << ledger.present.size() << " released=" << ledger.released.size()
            << " limbo=" << ledger.limbo.size() << " retries=" << ledger.retries
            << " rejected=" << ledger.rejected << " crashes=" << crashes_injected
            << " degraded_seen=" << (saw_degraded ? "yes" : "no")
            << " recovered_seen=" << (saw_recovery ? "yes" : "no")
            << " metric_checks=" << metric_rounds_checked
            << " metric_mismatches=" << metric_mismatches << "\n";
  if (mismatches == 0 && options.data_dir.empty()) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  } else if (mismatches != 0) {
    std::cerr << "prvm_chaos: state kept in " << dir << "\n";
  }
  return mismatches == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Replicated failover rounds: leader + live follower, ack_after_replicated,
// mid-round leader SIGKILL, follower promotion, differential verification.

int run_replicated(const Options& options) {
  namespace fs = std::filesystem;
  Rng rng(options.seed);

  fs::path dir = options.data_dir.empty()
                     ? fs::temp_directory_path() /
                           ("prvm-chaos-repl-" + std::to_string(options.seed) + "-" +
                            std::to_string(::getpid()))
                     : fs::path(options.data_dir);
  // The two nodes swap roles every round; dirs follow the role swap while
  // the socket paths stay role-bound.
  fs::path leader_dir = dir / "node-a";
  fs::path follower_dir = dir / "node-b";
  fs::create_directories(leader_dir);
  fs::create_directories(follower_dir);
  const std::string leader_sock = (dir / "leader.sock").string();
  const std::string follower_sock = (dir / "follower.sock").string();
  const std::string leader_log = (dir / "leader.log").string();
  const std::string follower_log = (dir / "follower.log").string();

  const Catalog catalog = ec2_sim_catalog();
  const std::vector<double> mix = default_vm_mix(catalog);

  Ledger ledger;
  std::unordered_map<std::uint64_t, std::uint64_t> placed_pm;  ///< acked PM per vm
  std::unordered_map<std::uint64_t, std::string> group_of;     ///< acked group per vm
  std::uint64_t next_vm = 1;
  std::uint64_t next_group = 1;
  std::uint64_t prev_op_seq = 0;  ///< op_seq the previous round drained at
  std::size_t promotions = 0;
  std::size_t catchup_rounds = 0;
  std::size_t mismatches = 0;

  const auto base_args = [&](const fs::path& data_dir, const std::string& sock) {
    std::vector<std::string> args = {
        options.serve_binary, "--socket", sock, "--data-dir", data_dir.string(),
        "--fleet", std::to_string(options.fleet), "--fsync", "--snapshot-every", "200",
        "--batch", "16"};
    args.insert(args.end(), options.serve_args.begin(), options.serve_args.end());
    return args;
  };

  // Churns `ops` requests against `client`; false = the connection died
  // mid-op (the op in flight is limbo). ~15% of iterations place a fresh
  // anti-collocation pair/trio instead of a single op.
  const auto churn = [&](Client& client, std::size_t ops) -> bool {
    std::vector<std::uint64_t> live(ledger.present.begin(), ledger.present.end());
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng.chance(0.15)) {
        const std::string group = "cg" + std::to_string(next_group++);
        const std::size_t members = rng.chance(0.3) ? 3 : 2;
        for (std::size_t m = 0; m < members; ++m) {
          const std::uint64_t vm = next_vm++;
          double pm = 0;
          try {
            switch (run_op(client, place_line(vm, rng.weighted_index(mix), group), true,
                           rng, ledger, /*replicated=*/true, &pm)) {
              case OpResult::kApplied:
                ledger.present.insert(vm);
                placed_pm[vm] = static_cast<std::uint64_t>(pm);
                group_of[vm] = group;
                live.push_back(vm);
                break;
              case OpResult::kRejected:
                ++ledger.rejected;
                break;
              case OpResult::kLimbo:
                ledger.mark_limbo(vm);
                break;
            }
          } catch (const std::exception&) {
            ledger.mark_limbo(vm);
            return false;
          }
        }
        continue;
      }
      const bool do_place = live.empty() || rng.chance(0.6);
      const std::uint64_t vm = do_place ? next_vm++ : [&] {
        const std::size_t pick = rng.uniform_index(live.size());
        const std::uint64_t victim = live[pick];
        live[pick] = live.back();
        live.pop_back();
        return victim;
      }();
      const std::string line =
          do_place ? place_line(vm, rng.weighted_index(mix)) : release_line(vm);
      double pm = 0;
      try {
        switch (run_op(client, line, do_place, rng, ledger, /*replicated=*/true, &pm)) {
          case OpResult::kApplied:
            if (do_place) {
              ledger.present.insert(vm);
              placed_pm[vm] = static_cast<std::uint64_t>(pm);
              live.push_back(vm);
            } else {
              ledger.present.erase(vm);
              ledger.released.insert(vm);
              placed_pm.erase(vm);
              group_of.erase(vm);
            }
            break;
          case OpResult::kRejected:
            ++ledger.rejected;
            if (!do_place) live.push_back(vm);
            break;
          case OpResult::kLimbo:
            ledger.mark_limbo(vm);
            placed_pm.erase(vm);
            group_of.erase(vm);
            break;
        }
      } catch (const std::exception&) {
        ledger.mark_limbo(vm);
        placed_pm.erase(vm);
        group_of.erase(vm);
        return false;
      }
    }
    return true;
  };

  for (std::size_t round = 0; round < options.rounds; ++round) {
    std::cout << "prvm_chaos: replicated round " << (round + 1) << "/" << options.rounds
              << " [leader SIGKILL]\n";

    // Follower first, so the leader's boot-time handshake finds it.
    auto follower_args = base_args(follower_dir, follower_sock);
    follower_args.push_back("--follower");
    follower_args.push_back("--leader-hint");
    follower_args.push_back("unix:" + leader_sock);
    const pid_t follower_pid = spawn(follower_args, follower_log);
    Client follower;
    if (!wait_ready(follower, follower_sock, follower_pid, 300'000)) {
      std::cerr << "prvm_chaos: follower did not come up (round " << round + 1 << ")\n";
      dump_log_tail(follower_log);
      ::kill(follower_pid, SIGKILL);
      wait_exit(follower_pid, 5'000);
      return 1;
    }

    auto leader_args = base_args(leader_dir, leader_sock);
    leader_args.push_back("--replica");
    leader_args.push_back("unix:" + follower_sock);
    leader_args.push_back("--ack-replicas");
    leader_args.push_back("1");
    leader_args.push_back("--repl-timeout-ms");
    leader_args.push_back("4000");
    const pid_t leader_pid = spawn(leader_args, leader_log);
    Client leader;
    if (!wait_ready(leader, leader_sock, leader_pid, 300'000)) {
      std::cerr << "prvm_chaos: leader did not come up (round " << round + 1 << ")\n";
      dump_log_tail(leader_log);
      ::kill(leader_pid, SIGKILL);
      ::kill(follower_pid, SIGKILL);
      wait_exit(leader_pid, 5'000);
      wait_exit(follower_pid, 5'000);
      return 1;
    }

    // Spot-check survivor state on the new leader (booted from the
    // previously promoted follower's dir): acked ops, identical PMs.
    try {
      std::size_t sampled = 0;
      for (const std::uint64_t vm : ledger.present) {
        if (++sampled > 50) break;
        const JsonValue doc = leader.request(lookup_line(vm));
        if (!field_ok(doc) ||
            static_cast<std::uint64_t>(field_number(doc, "pm")) != placed_pm[vm]) {
          std::cerr << "prvm_chaos: VERIFY FAIL: vm " << vm
                    << " lost or moved across failover round " << round + 1 << "\n";
          ++mismatches;
        }
      }
    } catch (const std::exception& e) {
      std::cerr << "prvm_chaos: spot-check connection failed: " << e.what() << "\n";
      ++mismatches;
    }

    // Phase 1: fault-free churn, then quiesce and require identical state
    // digests at identical op_seq — the follower is a byte-faithful replica.
    bool lost_early = !churn(leader, options.ops_per_round / 2);
    if (lost_early) {
      std::cerr << "prvm_chaos: leader dropped the connection un-killed (round "
                << round + 1 << ")\n";
      dump_log_tail(leader_log);
      ::kill(leader_pid, SIGKILL);
      ::kill(follower_pid, SIGKILL);
      return 1;
    }
    try {
      bool synced = false;
      std::string leader_digest, follower_digest;
      for (int i = 0; i < 100 && !synced; ++i) {
        const JsonValue ls = leader.request("{\"op\":\"stats\"}\n");
        const JsonValue fs2 = follower.request("{\"op\":\"stats\"}\n");
        if (field_number(ls, "op_seq") == field_number(fs2, "op_seq")) {
          leader_digest = field_string(ls, "state_digest");
          follower_digest = field_string(fs2, "state_digest");
          synced = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (!synced || leader_digest.empty() || leader_digest != follower_digest) {
        std::cerr << "prvm_chaos: VERIFY FAIL: digest mismatch at quiesce (round "
                  << round + 1 << "): leader=" << leader_digest
                  << " follower=" << follower_digest
                  << (synced ? "" : " (op_seq never converged)") << "\n";
        ++mismatches;
      }
      // Rounds after the first boot a wiped follower against a non-empty
      // leader: catching up MUST have installed a snapshot.
      if (prev_op_seq > 0) {
        const JsonValue mdoc = follower.request("{\"op\":\"metrics\"}\n");
        const JsonValue* metrics = mdoc.find("metrics");
        const double snaps =
            metrics != nullptr
                ? metric_number(*metrics, "counters", "prvm_repl_snapshots_installed_total")
                : 0.0;
        if (snaps < 1) {
          std::cerr << "prvm_chaos: VERIFY FAIL: wiped follower joined a non-empty "
                       "leader without a snapshot install (round " << round + 1 << ")\n";
          ++mismatches;
        } else {
          ++catchup_rounds;
        }
      }
    } catch (const std::exception& e) {
      std::cerr << "prvm_chaos: quiesce check failed: " << e.what() << "\n";
      ++mismatches;
    }

    // Phase 2: churn with a mid-flight leader SIGKILL. Replicated ops are
    // fast (local sockets), so the delay window is tight to land the kill
    // while requests are actually in flight.
    std::atomic<bool> kill_sent{false};
    const int delay_ms = rng.uniform_int(1, 60);
    std::thread killer([leader_pid, delay_ms, &kill_sent] {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      kill_sent.store(true);
      ::kill(leader_pid, SIGKILL);
    });
    const bool survived = churn(leader, options.ops_per_round - options.ops_per_round / 2);
    killer.join();
    if (!survived && !kill_sent.load()) {
      std::cerr << "prvm_chaos: leader dropped the connection un-killed (round "
                << round + 1 << ")\n";
      dump_log_tail(leader_log);
      ::kill(follower_pid, SIGKILL);
      return 1;
    }
    leader.disconnect();
    if (!wait_exit(leader_pid, 30'000).has_value()) {
      std::cerr << "prvm_chaos: leader survived SIGKILL?!\n";
      return 1;
    }

    // Failover: promote the follower and verify the acked ledger on it.
    try {
      const JsonValue promoted = follower.request("{\"op\":\"promote\"}\n");
      if (!field_ok(promoted)) {
        std::cerr << "prvm_chaos: VERIFY FAIL: promote rejected: "
                  << field_string(promoted, "error") << " (round " << round + 1 << ")\n";
        ++mismatches;
      } else {
        ++promotions;
      }
      const JsonValue again = follower.request("{\"op\":\"promote\"}\n");
      if (field_ok(again) || field_string(again, "error") != "not_follower") {
        std::cerr << "prvm_chaos: VERIFY FAIL: double promotion not rejected with "
                     "not_follower (round " << round + 1 << ")\n";
        ++mismatches;
      }
      const JsonValue health = follower.request("{\"op\":\"health\"}\n");
      if (field_string(health, "role") != "leader") {
        std::cerr << "prvm_chaos: VERIFY FAIL: promoted node reports role "
                  << field_string(health, "role") << " (round " << round + 1 << ")\n";
        ++mismatches;
      }
      mismatches += verify_ledger(follower, ledger);
      // Acked placements must sit on the SAME PM the leader acked, and
      // anti-collocation groups must stay pairwise-distinct.
      std::unordered_map<std::string, std::unordered_set<std::uint64_t>> group_pms;
      for (const std::uint64_t vm : ledger.present) {
        const JsonValue doc = follower.request(lookup_line(vm));
        if (!field_ok(doc)) continue;  // verify_ledger already flagged it
        const std::uint64_t pm = static_cast<std::uint64_t>(field_number(doc, "pm"));
        if (pm != placed_pm[vm]) {
          std::cerr << "prvm_chaos: VERIFY FAIL: vm " << vm << " acked on pm "
                    << placed_pm[vm] << " but follower has pm " << pm << "\n";
          ++mismatches;
        }
        const auto group = group_of.find(vm);
        if (group != group_of.end() && !group_pms[group->second].insert(pm).second) {
          std::cerr << "prvm_chaos: VERIFY FAIL: anti-collocation group "
                    << group->second << " has two members on pm " << pm << "\n";
          ++mismatches;
        }
      }
      const JsonValue stats = follower.request("{\"op\":\"stats\"}\n");
      prev_op_seq = static_cast<std::uint64_t>(field_number(stats, "op_seq"));
    } catch (const std::exception& e) {
      std::cerr << "prvm_chaos: failover verification failed: " << e.what() << "\n";
      ++mismatches;
    }
    follower.disconnect();

    ::kill(follower_pid, SIGTERM);
    const auto status = wait_exit(follower_pid, 120'000);
    if (!status.has_value() || !WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
      std::cerr << "prvm_chaos: promoted follower failed to drain cleanly\n";
      if (!status.has_value()) ::kill(follower_pid, SIGKILL);
      ++mismatches;
    }

    // Role swap: the promoted follower's dir leads the next round; the old
    // leader's dir is wiped so the fresh follower must catch up by snapshot.
    std::swap(leader_dir, follower_dir);
    std::error_code ec;
    fs::remove_all(follower_dir, ec);
    fs::create_directories(follower_dir);
  }

  std::cout << "prvm_chaos: " << (mismatches == 0 ? "PASS" : "FAIL")
            << " mode=replicated seed=" << options.seed << " rounds=" << options.rounds
            << " placed=" << ledger.present.size() << " released="
            << ledger.released.size() << " limbo=" << ledger.limbo.size()
            << " retries=" << ledger.retries << " rejected=" << ledger.rejected
            << " promotions=" << promotions << " catchup_rounds=" << catchup_rounds
            << "\n";
  if (mismatches == 0 && options.data_dir.empty()) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  } else if (mismatches != 0) {
    std::cerr << "prvm_chaos: state kept in " << dir << "\n";
  }
  return mismatches == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Rebalancer chaos rounds: --rebalance. The daemon runs its background
// migration planner while a skewed utilization feed keeps one PM hot, so
// SIGKILLs land while planner-internal migrates are in the WAL pipeline.

std::string util_vm_line(std::uint64_t vm, double cpu) {
  return "{\"op\":\"util\",\"vm\":" + std::to_string(vm) +
         ",\"cpu\":" + std::to_string(cpu) + "}\n";
}

std::string util_pm_line(std::uint64_t pm, double cpu) {
  return "{\"op\":\"util\",\"pm\":" + std::to_string(pm) +
         ",\"cpu\":" + std::to_string(cpu) + "}\n";
}

int run_rebalance(const Options& options) {
  namespace fs = std::filesystem;
  Rng rng(options.seed);

  fs::path dir = options.data_dir.empty()
                     ? fs::temp_directory_path() /
                           ("prvm-chaos-rebal-" + std::to_string(options.seed) + "-" +
                            std::to_string(::getpid()))
                     : fs::path(options.data_dir);
  fs::create_directories(dir);
  const std::string socket_path = (dir / "chaos.sock").string();
  const std::string log_path = (dir / "daemon.log").string();

  const Catalog catalog = ec2_sim_catalog();
  const std::vector<double> mix = default_vm_mix(catalog);

  Ledger ledger;
  std::unordered_map<std::uint64_t, std::string> group_of;  ///< acked group per vm
  std::uint64_t next_vm = 1;
  std::uint64_t next_group = 1;
  std::uint64_t moves_seen = 0;  ///< planner migrations observed across rounds
  std::size_t crashes_injected = 0;
  std::size_t mismatches = 0;

  const auto daemon_args = [&](bool planner_on) {
    std::vector<std::string> args = {
        options.serve_binary, "--socket", socket_path, "--data-dir", dir.string(),
        "--fleet", std::to_string(options.fleet), "--fsync", "--snapshot-every", "200",
        "--batch", "16"};
    if (planner_on) {
      const std::vector<std::string> flags = {"--rebalance", "--rebalance-interval-ms",
                                             "100", "--rebalance-cooldown-ms", "500",
                                             "--max-moves", "4"};
      args.insert(args.end(), flags.begin(), flags.end());
    }
    args.insert(args.end(), options.serve_args.begin(), options.serve_args.end());
    return args;
  };

  // Every acked-present member of an anti-collocation group must sit on a
  // distinct PM — the planner's migrates go through the same admission as
  // client placements, so a collocation is a correctness bug whenever seen.
  const auto check_groups = [&](Client& client, const std::string& when) {
    std::unordered_map<std::string, std::unordered_map<std::uint64_t, std::uint64_t>> seen;
    for (const std::uint64_t vm : ledger.present) {
      const auto group = group_of.find(vm);
      if (group == group_of.end()) continue;
      const JsonValue doc = client.request(lookup_line(vm));
      if (!field_ok(doc)) continue;  // presence is verified separately
      const std::uint64_t pm = static_cast<std::uint64_t>(field_number(doc, "pm"));
      const auto [it, fresh] = seen[group->second].emplace(pm, vm);
      if (!fresh) {
        std::cerr << "prvm_chaos: VERIFY FAIL: anti-collocation group " << group->second
                  << " has vm " << it->second << " and vm " << vm << " on pm " << pm
                  << " (" << when << ")\n";
        ++mismatches;
      }
    }
  };

  // Mutating churn with ~15% anti-collocation pair/trio placements; false =
  // connection died mid-op (the op in flight is limbo).
  const auto churn = [&](Client& client, std::size_t ops) -> bool {
    std::vector<std::uint64_t> live(ledger.present.begin(), ledger.present.end());
    for (std::size_t op = 0; op < ops; ++op) {
      if (rng.chance(0.15)) {
        const std::string group = "rg" + std::to_string(next_group++);
        const std::size_t members = rng.chance(0.3) ? 3 : 2;
        for (std::size_t m = 0; m < members; ++m) {
          const std::uint64_t vm = next_vm++;
          try {
            switch (run_op(client, place_line(vm, rng.weighted_index(mix), group), true,
                           rng, ledger)) {
              case OpResult::kApplied:
                ledger.present.insert(vm);
                group_of[vm] = group;
                live.push_back(vm);
                break;
              case OpResult::kRejected:
                ++ledger.rejected;
                break;
              case OpResult::kLimbo:
                ledger.mark_limbo(vm);
                break;
            }
          } catch (const std::exception&) {
            ledger.mark_limbo(vm);
            return false;
          }
        }
        continue;
      }
      const bool do_place = live.empty() || rng.chance(0.6);
      const std::uint64_t vm = do_place ? next_vm++ : [&] {
        const std::size_t pick = rng.uniform_index(live.size());
        const std::uint64_t victim = live[pick];
        live[pick] = live.back();
        live.pop_back();
        return victim;
      }();
      const std::string line =
          do_place ? place_line(vm, rng.weighted_index(mix)) : release_line(vm);
      try {
        switch (run_op(client, line, do_place, rng, ledger)) {
          case OpResult::kApplied:
            if (do_place) {
              ledger.present.insert(vm);
              live.push_back(vm);
            } else {
              ledger.present.erase(vm);
              ledger.released.insert(vm);
              group_of.erase(vm);
            }
            break;
          case OpResult::kRejected:
            ++ledger.rejected;
            if (!do_place) live.push_back(vm);
            break;
          case OpResult::kLimbo:
            ledger.mark_limbo(vm);
            group_of.erase(vm);
            break;
        }
      } catch (const std::exception&) {
        ledger.mark_limbo(vm);
        group_of.erase(vm);
        return false;
      }
    }
    return true;
  };

  // One feed wave: find the fullest PM by resolving live VMs, then report
  // its residents (and the PM itself) bursting hot while everything else
  // idles just above the underload threshold. Throws on connection loss.
  const auto feed_wave = [&](Client& client) {
    std::unordered_map<std::uint64_t, std::uint64_t> vm_pm;
    std::unordered_map<std::uint64_t, std::size_t> residents;
    std::size_t scanned = 0;
    for (const std::uint64_t vm : ledger.present) {
      if (++scanned > 300) break;
      const JsonValue doc = client.request(lookup_line(vm));
      if (!field_ok(doc)) continue;
      const std::uint64_t pm = static_cast<std::uint64_t>(field_number(doc, "pm"));
      vm_pm[vm] = pm;
      ++residents[pm];
    }
    std::uint64_t hot = 0;
    std::size_t hot_count = 0;
    for (const auto& [pm, count] : residents) {
      if (count > hot_count || (count == hot_count && pm < hot)) {
        hot = pm;
        hot_count = count;
      }
    }
    for (const auto& [vm, pm] : vm_pm) {
      client.request(util_vm_line(vm, pm == hot ? 1.3 : 0.05));
    }
    for (std::uint64_t pm = 0; pm < options.fleet; ++pm) {
      client.request(util_pm_line(pm, pm == hot ? 1.3 : 0.3));
    }
  };

  for (std::size_t round = 0; round < options.rounds; ++round) {
    const bool hard_kill = (round % 2) == 1;
    std::cout << "prvm_chaos: rebalance round " << (round + 1) << "/" << options.rounds
              << (hard_kill ? " [SIGKILL]" : " [SIGTERM]") << "\n";

    const pid_t pid = spawn(daemon_args(/*planner_on=*/true), log_path);
    Client client;
    if (!wait_ready(client, socket_path, pid, 300'000)) {
      std::cerr << "prvm_chaos: daemon did not come up (round " << round + 1 << ")\n";
      dump_log_tail(log_path);
      ::kill(pid, SIGKILL);
      wait_exit(pid, 5'000);
      return 1;
    }

    // Spot-check recovery before adding load: acked state survived the
    // previous round's kill, and no group got collocated by it.
    try {
      std::size_t sampled = 0;
      for (const std::uint64_t vm : ledger.present) {
        if (++sampled > 50) break;
        if (!field_ok(client.request(lookup_line(vm)))) {
          std::cerr << "prvm_chaos: VERIFY FAIL: vm " << vm << " lost across restart (round "
                    << round + 1 << ")\n";
          ++mismatches;
        }
      }
      check_groups(client, "across restart, round " + std::to_string(round + 1));
    } catch (const std::exception& e) {
      std::cerr << "prvm_chaos: spot-check connection failed: " << e.what() << "\n";
      dump_log_tail(log_path);
      ::kill(pid, SIGKILL);
      wait_exit(pid, 5'000);
      return 1;
    }

    // Build up load first, un-killed: a crash here is a daemon bug.
    if (!churn(client, options.ops_per_round)) {
      std::cerr << "prvm_chaos: daemon dropped the connection un-killed (round "
                << round + 1 << ")\n";
      dump_log_tail(log_path);
      ::kill(pid, SIGKILL);
      wait_exit(pid, 5'000);
      return 1;
    }

    // Feed phase: skewed samples drive the planner into continuous
    // migration; on kill rounds the SIGKILL lands inside this window.
    std::atomic<bool> kill_sent{false};
    std::thread killer;
    if (hard_kill) {
      const int delay_ms = rng.uniform_int(300, 2000);
      killer = std::thread([pid, delay_ms, &kill_sent] {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        kill_sent.store(true);
        ::kill(pid, SIGKILL);
      });
      ++crashes_injected;
    }
    bool connection_lost = false;
    for (std::size_t wave = 0; wave < 10 && !connection_lost; ++wave) {
      try {
        feed_wave(client);
      } catch (const std::exception&) {
        connection_lost = true;
        break;
      }
      // Interleave client mutations so the kill also races planner moves
      // against ordinary traffic in the same WAL.
      if (!churn(client, 5)) {
        connection_lost = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }

    if (hard_kill) {
      killer.join();
      client.disconnect();
      if (!wait_exit(pid, 30'000).has_value()) {
        std::cerr << "prvm_chaos: daemon survived SIGKILL?!\n";
        return 1;
      }
      continue;
    }

    if (connection_lost && !kill_sent.load()) {
      std::cerr << "prvm_chaos: daemon dropped the connection un-killed (round "
                << round + 1 << ")\n";
      dump_log_tail(log_path);
      ::kill(pid, SIGKILL);
      wait_exit(pid, 5'000);
      return 1;
    }

    // Live checks while the planner is still running, then a clean drain.
    try {
      check_groups(client, "live, round " + std::to_string(round + 1));
      const JsonValue health = client.request("{\"op\":\"health\"}\n");
      if (field_string(health, "rebalance").empty()) {
        std::cerr << "prvm_chaos: VERIFY FAIL: health response lacks the rebalance "
                     "state (round " << round + 1 << ")\n";
        ++mismatches;
      }
      const JsonValue mdoc = client.request("{\"op\":\"metrics\"}\n");
      const JsonValue* metrics = mdoc.find("metrics");
      if (metrics != nullptr) {
        moves_seen += static_cast<std::uint64_t>(
            metric_number(*metrics, "counters", "prvm_rebal_moves_total"));
      }
    } catch (const std::exception& e) {
      std::cerr << "prvm_chaos: live check failed: " << e.what() << " (round "
                << round + 1 << ")\n";
      ++mismatches;
    }
    client.disconnect();
    ::kill(pid, SIGTERM);
    const auto status = wait_exit(pid, 120'000);
    if (!status.has_value() || !WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
      std::cerr << "prvm_chaos: daemon failed to drain cleanly (round " << round + 1
                << ")\n";
      if (!status.has_value()) ::kill(pid, SIGKILL);
      dump_log_tail(log_path);
      return 1;
    }
  }

  // Final differential verification, planner off so the state under
  // inspection cannot shift: acked ledger intact, groups distinct, and two
  // consecutive boots agree byte-for-byte on the state digest — every
  // migration that reached the ledger came back from the WAL.
  std::cout << "prvm_chaos: verifying " << ledger.present.size() << " placements, "
            << ledger.released.size() << " releases (" << ledger.limbo.size()
            << " limbo ignored), planner moves seen=" << moves_seen << "\n";
  std::string digest_first;
  for (int boot = 0; boot < 2; ++boot) {
    const pid_t pid = spawn(daemon_args(/*planner_on=*/false), log_path);
    Client client;
    if (!wait_ready(client, socket_path, pid, 300'000)) {
      std::cerr << "prvm_chaos: verification daemon did not come up (boot " << boot + 1
                << ")\n";
      dump_log_tail(log_path);
      ::kill(pid, SIGKILL);
      wait_exit(pid, 5'000);
      return 1;
    }
    try {
      if (boot == 0) {
        const JsonValue health = client.request("{\"op\":\"health\"}\n");
        if (field_string(health, "mode") != "ok") {
          std::cerr << "prvm_chaos: VERIFY FAIL: fault-free boot reports mode="
                    << field_string(health, "mode") << "\n";
          ++mismatches;
        }
        mismatches += verify_ledger(client, ledger);
        check_groups(client, "after recovery");
      }
      const JsonValue stats = client.request("{\"op\":\"stats\"}\n");
      const std::string digest = field_string(stats, "state_digest");
      if (boot == 0) {
        digest_first = digest;
      } else if (digest.empty() || digest != digest_first) {
        std::cerr << "prvm_chaos: VERIFY FAIL: state digest changed across fault-free "
                     "reboots (" << digest_first << " vs " << digest
                  << ") — an acked migration was not WAL-durable\n";
        ++mismatches;
      }
    } catch (const std::exception& e) {
      std::cerr << "prvm_chaos: verification connection failed: " << e.what() << "\n";
      ++mismatches;
    }
    client.disconnect();
    ::kill(pid, SIGTERM);
    const auto status = wait_exit(pid, 120'000);
    if (!status.has_value() || !WIFEXITED(*status) || WEXITSTATUS(*status) != 0) {
      std::cerr << "prvm_chaos: verification daemon failed to drain cleanly\n";
      if (!status.has_value()) ::kill(pid, SIGKILL);
      ++mismatches;
    }
  }
  if (moves_seen == 0) {
    std::cerr << "prvm_chaos: VERIFY FAIL: the planner never migrated anything — the "
                 "harness exercised nothing\n";
    ++mismatches;
  }

  std::cout << "prvm_chaos: " << (mismatches == 0 ? "PASS" : "FAIL")
            << " mode=rebalance seed=" << options.seed << " rounds=" << options.rounds
            << " placed=" << ledger.present.size() << " released="
            << ledger.released.size() << " limbo=" << ledger.limbo.size()
            << " retries=" << ledger.retries << " rejected=" << ledger.rejected
            << " crashes=" << crashes_injected << " planner_moves=" << moves_seen << "\n";
  if (mismatches == 0 && options.data_dir.empty()) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  } else if (mismatches != 0) {
    std::cerr << "prvm_chaos: state kept in " << dir << "\n";
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace prvm

int main(int argc, char** argv) {
  using namespace prvm;
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--serve") {
      options.serve_binary = value();
    } else if (arg == "--seed") {
      options.seed = std::stoull(value());
    } else if (arg == "--rounds") {
      options.rounds = std::stoull(value());
    } else if (arg == "--ops") {
      options.ops_per_round = std::stoull(value());
    } else if (arg == "--fleet") {
      options.fleet = std::stoull(value());
    } else if (arg == "--data-dir") {
      options.data_dir = value();
    } else if (arg == "--serve-arg") {
      options.serve_args.push_back(value());
    } else if (arg == "--replicated") {
      options.replicated = true;
    } else if (arg == "--rebalance") {
      options.rebalance = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " --serve PATH [--seed N] [--rounds R] [--ops N] [--fleet N]"
                << " [--data-dir PATH] [--serve-arg FLAG]... [--replicated] [--rebalance]\n";
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (options.serve_binary.empty()) {
    std::cerr << "prvm_chaos: --serve PATH is required\n";
    return 2;
  }
  if (options.fleet == 0) options.fleet = options.rebalance ? 24 : 400;
  ::signal(SIGPIPE, SIG_IGN);
  try {
    if (options.rebalance) return run_rebalance(options);
    return options.replicated ? run_replicated(options) : run(options);
  } catch (const std::exception& e) {
    std::cerr << "prvm_chaos: fatal: " << e.what() << "\n";
    return 1;
  }
}
