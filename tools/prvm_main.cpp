// The `prvm` command-line tool: runs the library's experiment modes from
// the shell. All logic lives in src/cli (unit-tested); this is the thin,
// exception-to-exit-code wrapper.
#include <exception>
#include <iostream>
#include <vector>

#include "cli/run.hpp"

int main(int argc, char** argv) {
  std::vector<std::string_view> args(argv + 1, argv + argc);
  try {
    const prvm::CliOptions options = prvm::parse_cli(args);
    return prvm::run_cli(options, std::cout);
  } catch (const std::invalid_argument& e) {
    std::cerr << "prvm: " << e.what() << "\n\n" << prvm::cli_help();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "prvm: internal error: " << e.what() << "\n";
    return 1;
  }
}
