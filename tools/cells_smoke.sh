#!/usr/bin/env bash
# Multi-cell smoke test: a real sharded deployment end to end.
#
# Boots two prvm_serve cell daemons (sharing one --score-image directory),
# fronts them with prvm_router over the socket protocol, then:
#   1. drives loadgen churn through the router (routing, spillover, merged
#      stats all on the hot path),
#   2. runs a spanning-group round-trip over a raw TCP connection: three
#      anti-collocation members placed via the reserve/commit saga, a
#      duplicate vetoed by the home cell, a release that frees the id,
#   3. reads per-cell stats with loadgen's multi-endpoint mode,
#   4. drains everything gracefully and requires exit 0 all around.
# On boxes with >= 4 cores it additionally runs bench_cells (fast mode) and
# asserts the ISSUE acceptance gate: aggregate churn at 2 cells >= 1.5x the
# one-cell ceiling.
#
# Usage: tools/cells_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/tools/prvm_serve"
ROUTER="$BUILD_DIR/tools/prvm_router"
LOADGEN="$BUILD_DIR/tools/prvm_loadgen"
BENCH="$BUILD_DIR/bench/bench_cells"
[ -x "$SERVE" ] && [ -x "$ROUTER" ] && [ -x "$LOADGEN" ] || {
  echo "build prvm_serve + prvm_router + prvm_loadgen first"; exit 1; }

WORK="$(mktemp -d)"
CELL_PIDS=()
ROUTER_PID=""
cleanup() {
  [ -n "$ROUTER_PID" ] && kill -9 "$ROUTER_PID" 2>/dev/null || true
  for pid in ${CELL_PIDS[@]+"${CELL_PIDS[@]}"}; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_for_socket() {
  local sock="$1" pid="$2" log="$3"
  for _ in $(seq 1 600); do
    [ -S "$sock" ] && return 0
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "FAIL: daemon died during startup"; cat "$log"; exit 1
    fi
    sleep 0.5
  done
  echo "FAIL: daemon did not come up"; cat "$log"; exit 1
}

# --- two cells, one shared score-table image directory ----------------------
for k in 0 1; do
  "$SERVE" --socket "$WORK/cell$k.sock" --cell-id "$k" --fleet 1000 \
    --data-dir "$WORK/cell$k" --score-image "$WORK/img" \
    > "$WORK/cell$k.log" 2>&1 &
  CELL_PIDS+=($!)
  # Serialize startup: cell 0 writes the images, cell 1 must map them.
  wait_for_socket "$WORK/cell$k.sock" "${CELL_PIDS[$k]}" "$WORK/cell$k.log"
done
grep -q "score tables from image dir" "$WORK/cell0.log" || {
  echo "FAIL: cell 0 did not report the score-image source"; cat "$WORK/cell0.log"; exit 1; }
grep -Eq "\([1-9][0-9]* mapped, 0 written\)" "$WORK/cell1.log" || {
  echo "FAIL: cell 1 did not map cell 0's score images"; cat "$WORK/cell1.log"; exit 1; }
echo "OK: 2 cells up, score-table images shared"

# --- the router, on loopback TCP so bash /dev/tcp can speak to it -----------
"$ROUTER" --port 0 --cell "unix:$WORK/cell0.sock" --cell "unix:$WORK/cell1.sock" \
  > "$WORK/router.log" 2>&1 &
ROUTER_PID=$!
PORT=""
for _ in $(seq 1 600); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK/router.log")"
  [ -n "$PORT" ] && break
  kill -0 "$ROUTER_PID" 2>/dev/null || { echo "FAIL: router died"; cat "$WORK/router.log"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: router did not come up"; cat "$WORK/router.log"; exit 1; }
echo "OK: router listening on 127.0.0.1:$PORT"

# --- loadgen churn through the router ---------------------------------------
"$LOADGEN" --port "$PORT" --fill-pms 100 --ops 4000 --connections 2 --pipeline 32
STATS="$("$LOADGEN" --port "$PORT" --stats)"
echo "router stats: $STATS"
grep -q "cells=2" <<< "$STATS" || { echo "FAIL: merged stats missing cells=2"; exit 1; }

# --- spanning-group round-trip over raw TCP ---------------------------------
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
expect() {  # expect SUBSTRING <<< sent-request
  local want="$1" line
  cat >&3
  IFS= read -r line <&3
  grep -q "$want" <<< "$line" || { echo "FAIL: wanted '$want', got: $line"; exit 1; }
}
expect '"ok":true'                <<< '{"op":"place","vm":9000001,"type":0,"group":"smoke"}'
expect '"ok":true'                <<< '{"op":"place","vm":9000002,"type":0,"group":"smoke"}'
expect '"ok":true'                <<< '{"op":"place","vm":9000003,"type":0,"group":"smoke"}'
expect '"error":"duplicate_vm"'   <<< '{"op":"place","vm":9000002,"type":0,"group":"smoke"}'
expect '"ok":true'                <<< '{"op":"release","vm":9000002}'
expect '"ok":true'                <<< '{"op":"place","vm":9000002,"type":1,"group":"smoke"}'
expect '"role":"router"'          <<< '{"op":"health"}'
exec 3<&- 3>&-
echo "OK: spanning-group reserve/commit round-trip"

# --- per-cell visibility: loadgen multi-endpoint stats ----------------------
"$LOADGEN" --endpoint "unix:$WORK/cell0.sock" --endpoint "unix:$WORK/cell1.sock" --stats \
  | tee "$WORK/cell_stats.txt"
[ "$(wc -l < "$WORK/cell_stats.txt")" -eq 2 ] || {
  echo "FAIL: expected one stats line per cell endpoint"; exit 1; }

# --- clean drain: router first, then the cells ------------------------------
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || { echo "FAIL: router drain exited non-zero"; cat "$WORK/router.log"; exit 1; }
ROUTER_PID=""
for k in 0 1; do
  kill -TERM "${CELL_PIDS[$k]}"
  wait "${CELL_PIDS[$k]}" || { echo "FAIL: cell $k drain exited non-zero"; cat "$WORK/cell$k.log"; exit 1; }
done
CELL_PIDS=()
echo "OK: clean drain (router + 2 cells)"

# --- throughput gate (multi-core boxes only) --------------------------------
if [ -x "$BENCH" ] && [ "$(nproc)" -ge 4 ]; then
  PRVM_FAST=1 "$BENCH" --json "$WORK/bench_cells.json"
  python3 - "$WORK/bench_cells.json" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
two = next(r for r in data["runs"] if r["cells"] == 2)
speedup = two["speedup_over_one_cell"]
print(f"2-cell aggregate churn speedup: {speedup:.2f}x")
assert speedup >= 1.5, f"2-cell churn {speedup:.2f}x < 1.5x one-cell ceiling"
EOF
else
  echo "SKIP: throughput gate needs bench_cells + >= 4 cores (have $(nproc))"
fi
echo "OK: multi-cell smoke passed"
