#!/usr/bin/env bash
# JSON-lines vs PRVB1 binary socket throughput, same daemon binary, same
# workload, one protocol flag apart.
#
# Boots a fresh prvm_serve per protocol (identical fleet and data dir
# layout), drives the identical loadgen fill+churn workload over the Unix
# socket with and without --binary, then merges the two runs into one
# BENCH_service_socket.json whose "protocols" rows put the speedup on
# record. hardware_threads is recorded: on a single-core box the daemon
# worker and the codec contend for the same core, which caps how much a
# cheaper codec can show up as throughput.
#
# Usage: tools/socket_bench.sh [BUILD_DIR] [JSON_OUT]
#   FILL_PMS=5000 OPS=20000 CONNECTIONS=4 PIPELINE=64   workload size
#   GATE=1.15    fail unless binary churn >= GATE x json churn (CI smoke)
set -euo pipefail

BUILD_DIR="${1:-build}"
JSON_OUT="${2:-BENCH_service_socket.json}"
SERVE="$BUILD_DIR/tools/prvm_serve"
LOADGEN="$BUILD_DIR/tools/prvm_loadgen"
[ -x "$SERVE" ] && [ -x "$LOADGEN" ] || {
  echo "build prvm_serve + prvm_loadgen first"; exit 1; }

FILL_PMS="${FILL_PMS:-5000}"
OPS="${OPS:-20000}"
CONNECTIONS="${CONNECTIONS:-4}"
PIPELINE="${PIPELINE:-64}"
FLEET=$((FILL_PMS * 2))

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

run_protocol() {  # run_protocol json|binary [--binary]
  local name="$1"; shift
  local sock="$WORK/$name.sock"
  "$SERVE" --socket "$sock" --fleet "$FLEET" --data-dir "$WORK/data-$name" \
    --score-image "$WORK/img" > "$WORK/serve-$name.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 600); do
    [ -S "$sock" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || {
      echo "FAIL: daemon died"; cat "$WORK/serve-$name.log"; exit 1; }
    sleep 0.5
  done
  [ -S "$sock" ] || { echo "FAIL: daemon did not come up"; exit 1; }

  "$LOADGEN" --socket "$sock" --fill-pms "$FILL_PMS" --ops "$OPS" \
    --connections "$CONNECTIONS" --pipeline "$PIPELINE" "$@" \
    --json "$WORK/$name.json"

  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID" || { echo "FAIL: $name daemon drain failed"; exit 1; }
  SERVE_PID=""
}

echo "== JSON-lines run (fleet $FLEET, fill $FILL_PMS PMs, $OPS churn ops) =="
run_protocol json
echo "== PRVB1 binary run =="
run_protocol binary --binary

python3 - "$WORK/json.json" "$WORK/binary.json" "$JSON_OUT" "${GATE:-}" <<'EOF'
import json, os, sys
json_run = json.load(open(sys.argv[1]))
bin_run = json.load(open(sys.argv[2]))
out_path, gate = sys.argv[3], sys.argv[4]

def headline(run):
    svc = run["fleets"][0]["service"]
    return {
        "protocol": run["protocol"],
        "churn_placements_per_sec": svc["churn_placements_per_sec"],
        "fill_placements_per_sec": svc["fill_placements_per_sec"],
        "p50_us": svc["p50_us"],
        "p99_us": svc["p99_us"],
        "retries": svc["retries"],
    }

rows = [headline(json_run), headline(bin_run)]
base = rows[0]["churn_placements_per_sec"]
for row in rows:
    row["speedup_over_json"] = row["churn_placements_per_sec"] / base if base else 0.0

merged = {
    "benchmark": "service_throughput",
    "catalog": "ec2_sim",
    "fill_pms": json_run["fleets"][0]["pms"],
    "churn_ops": json_run["churn_ops"],
    "connections": json_run["connections"],
    "pipeline": json_run["pipeline"],
    "hardware_threads": os.cpu_count(),
    "protocols": rows,
    "sweep": json_run["sweep"],
    "fleets": json_run["fleets"],
    "binary": {"sweep": bin_run["sweep"], "fleets": bin_run["fleets"]},
}
speedup_note = rows[1]["churn_placements_per_sec"] / base if base else 0.0
if os.cpu_count() == 1 and speedup_note < 1.25:
    merged["notes"] = (
        "single hardware thread: the daemon worker, the socket IO threads and "
        "the codec all share one core, so cheaper decode partly converts into "
        "engine time instead of measured throughput; the codec-only gap is "
        "larger (see the smoke-size CI gate and the latency columns)")
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

for row in rows:
    print(f"  {row['protocol']:>6}: {row['churn_placements_per_sec']:>9.0f} churn pl/s  "
          f"p50 {row['p50_us']:.0f}us  p99 {row['p99_us']:.0f}us  "
          f"({row['speedup_over_json']:.2f}x json)")
speedup = rows[1]["speedup_over_json"]
if gate:
    assert speedup >= float(gate), \
        f"binary churn {speedup:.2f}x json is below the {gate}x gate"
    print(f"OK: binary >= {gate}x json churn gate")
EOF
echo "wrote $JSON_OUT"
