// prvm_router — the routing tier of a sharded placement deployment.
//
// Listens on the same JSON-lines protocol as prvm_serve and fans requests
// out to N placement cells (DESIGN.md §7): hash routing with capacity
// spillover for ungrouped placements, a reserve/commit saga through each
// group's home cell for anti-collocation groups that span cells, and
// fan-out merges for stats/health/drain. Clients cannot tell a router from
// a single-cell daemon.
//
// Two cell modes:
//  - remote:   repeat --cell unix:/path/to/cell.sock or --cell tcp:PORT;
//              each is a prvm_serve daemon started with --cell-id K.
//  - embedded: --cells N hosts N full cells in-process (own WAL/snapshot
//              dirs under --data-dir/cell-<k>/), the zero-ops way to run
//              a sharded deployment on one box.
//
//   prvm_router --socket /tmp/prvm.sock --cells 4 --fleet 10000 \
//               --data-dir /var/lib/prvm --score-image /var/lib/prvm/img
//
// SIGTERM/SIGINT drain: stop accepting, then (embedded mode) drain every
// cell to a final snapshot. Remote cells are drained by their own daemons.
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cells/embedded.hpp"
#include "core/catalog_graphs.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "router/cell_channel.hpp"
#include "router/router.hpp"
#include "service/socket_server.hpp"
#include "sim/simulator.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void handle_signal(int) { g_shutdown = 1; }

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --socket PATH        listen on a Unix-domain socket (default /tmp/prvm.sock)\n"
      << "  --port N             listen on loopback TCP instead (0 = ephemeral)\n"
      << "  --cell SPEC          add a remote cell: unix:/path.sock or tcp:PORT\n"
      << "  --binary-cells       speak the PRVB1 binary protocol to remote cells\n"
      << "                       (repeat once per cell, in cell-id order); a comma-\n"
      << "                       separated list (leader,replica,...) enables failover:\n"
      << "                       on leader loss the next reachable endpoint is promoted\n"
      << "  --cells N            embedded mode: host N cells in-process (default when\n"
      << "                       no --cell endpoints are given: 2)\n"
      << "  --fleet N            embedded: total PM fleet, split round-robin (default 10000)\n"
      << "  --data-dir PATH      embedded: WAL/snapshot root; cells log under cell-<k>/\n"
      << "  --batch K            embedded: per-cell engine batch (default 64)\n"
      << "  --queue N            embedded: per-cell queue capacity (default 4096)\n"
      << "  --snapshot-every N   embedded: per-cell snapshot cadence (default 100000)\n"
      << "  --parallel-workers N embedded: per-cell speculative compute workers\n"
      << "  --flush-group N      embedded: per-cell WAL group commit window\n"
      << "  --fsync              embedded: fsync the WAL every batch\n"
      << "  --cache-dir PATH     score-table cache (default $PRVM_CACHE_DIR or .prvm-cache)\n"
      << "  --score-image DIR    embedded: serve score tables from mmap images under DIR\n"
      << "  --metrics-port N     serve the router registry as Prometheus text on 127.0.0.1:N\n"
      << "  --retry-attempts N   re-submits after cell_unreachable (default 2; each retry\n"
      << "                       re-enters the channel, where failover happens)\n"
      << "  --retry-backoff-ms X linear backoff base between retries (default 25)\n"
      << "  --map-file PATH      persist the vm->cell map: loaded at startup, saved\n"
      << "                       every --map-save-s seconds and on drain\n"
      << "  --map-save-s N       periodic map save interval (default 30)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prvm;

  std::string socket_path = "/tmp/prvm.sock";
  bool use_tcp = false;
  int tcp_port = 0;
  std::vector<std::string> cell_specs;
  bool binary_cells = false;
  std::size_t embedded_cells = 0;
  std::size_t fleet = 10000;
  std::optional<int> metrics_port;
  std::optional<std::filesystem::path> cache_dir;
  std::optional<std::filesystem::path> score_image_dir;
  EmbeddedCellsConfig cells_config;
  cells_config.service.snapshot_every_ops = 100000;
  RouterConfig router_config;
  std::optional<std::filesystem::path> map_file;
  unsigned map_save_s = 30;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
      use_tcp = false;
    } else if (arg == "--port") {
      tcp_port = std::stoi(value());
      use_tcp = true;
    } else if (arg == "--cell") {
      cell_specs.push_back(value());
    } else if (arg == "--binary-cells") {
      binary_cells = true;
    } else if (arg == "--cells") {
      embedded_cells = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--fleet") {
      fleet = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--data-dir") {
      cells_config.data_dir = value();
    } else if (arg == "--batch") {
      cells_config.service.batch_size = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--queue") {
      cells_config.service.queue_capacity = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--snapshot-every") {
      cells_config.service.snapshot_every_ops = std::stoull(value());
    } else if (arg == "--parallel-workers") {
      cells_config.service.parallel_workers =
          static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--flush-group") {
      cells_config.service.flush_group_max =
          static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--fsync") {
      cells_config.service.fsync_wal = true;
    } else if (arg == "--cache-dir") {
      cache_dir = value();
    } else if (arg == "--score-image") {
      score_image_dir = value();
    } else if (arg == "--metrics-port") {
      metrics_port = std::stoi(value());
    } else if (arg == "--retry-attempts") {
      router_config.retry_attempts = static_cast<std::size_t>(std::stoull(value()));
    } else if (arg == "--retry-backoff-ms") {
      router_config.retry_backoff_ms = std::stod(value());
    } else if (arg == "--map-file") {
      map_file = value();
    } else if (arg == "--map-save-s") {
      map_save_s = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (!cell_specs.empty() && embedded_cells > 0) {
    std::cerr << "prvm_router: --cell and --cells are mutually exclusive\n";
    return 2;
  }
  if (cell_specs.empty() && embedded_cells == 0) embedded_cells = 2;

  try {
    std::vector<std::unique_ptr<RequestSink>> channels;
    std::unique_ptr<EmbeddedCells> embedded;
    std::vector<RequestSink*> sinks;

    if (!cell_specs.empty()) {
      for (const std::string& spec : cell_specs) {
        // "leader,replica,..." builds a failover channel; a single endpoint
        // keeps the plain pipelined channel (no health qualification).
        if (spec.find(',') != std::string::npos) {
          FailoverCellChannel::Config failover;
          failover.metrics = &obs::Registry::global();
          failover.binary = binary_cells;
          std::size_t start = 0;
          while (start <= spec.size()) {
            const std::size_t comma = spec.find(',', start);
            const std::string endpoint =
                spec.substr(start, comma == std::string::npos ? std::string::npos
                                                              : comma - start);
            if (!endpoint.empty()) failover.endpoints.push_back(endpoint);
            if (comma == std::string::npos) break;
            start = comma + 1;
          }
          channels.push_back(std::make_unique<FailoverCellChannel>(std::move(failover)));
        } else if (spec.rfind("unix:", 0) == 0) {
          channels.push_back(
              std::make_unique<SocketCellChannel>(spec.substr(5), binary_cells));
        } else if (spec.rfind("tcp:", 0) == 0) {
          channels.push_back(std::make_unique<SocketCellChannel>(
              "127.0.0.1", std::stoi(spec.substr(4)), binary_cells));
        } else {
          std::cerr << "prvm_router: bad --cell spec '" << spec
                    << "' (want unix:PATH or tcp:PORT, comma-separated for failover)\n";
          return 2;
        }
        sinks.push_back(channels.back().get());
      }
      std::cout << "prvm_router: " << sinks.size() << " remote cells\n";
    } else {
      const Catalog catalog = ec2_sim_catalog();
      std::shared_ptr<const ScoreTableSet> tables;
      if (score_image_dir.has_value()) {
        ScoreImageReport report;
        tables = std::make_shared<const ScoreTableSet>(
            mapped_score_tables(catalog, *score_image_dir, {}, &report));
        std::cout << "prvm_router: score tables from image dir "
                  << *score_image_dir << " (" << report.mapped << " mapped, "
                  << report.written << " written";
        if (report.fallback > 0) {
          std::cout << ", " << report.fallback << " FELL BACK to private memory";
        }
        std::cout << ")\n";
      } else {
        tables = std::make_shared<const ScoreTableSet>(build_score_tables(
            catalog, {}, cache_dir.value_or(default_cache_dir())));
      }
      cells_config.cells = embedded_cells;
      embedded = std::make_unique<EmbeddedCells>(
          catalog, mixed_pm_fleet(catalog, fleet), tables, cells_config);
      for (std::size_t k = 0; k < embedded->size(); ++k) {
        const ServiceStats boot = embedded->cell(k).stats();
        if (boot.recovered) {
          std::cout << "prvm_router: cell " << k << " recovered "
                    << embedded->cell(k).datacenter().vm_count() << " VMs ("
                    << boot.replayed_records << " WAL records replayed)\n";
        }
      }
      embedded->start();
      sinks = embedded->sinks();
      std::cout << "prvm_router: " << sinks.size() << " embedded cells, "
                << fleet << " PMs total\n";
    }

    router_config.metrics = obs::global_registry_ptr();
    Router router(std::move(sinks), router_config);
    if (map_file.has_value() && router.load_vm_map(*map_file)) {
      std::cout << "prvm_router: loaded vm map (" << router.vm_map_size()
                << " entries) from " << *map_file << "\n";
    }

    SocketServerConfig socket_config;
    if (use_tcp) {
      socket_config.tcp_port = tcp_port;
    } else {
      socket_config.unix_path = socket_path;
    }
    SocketServer server(router, socket_config);
    server.start();
    if (use_tcp) {
      std::cout << "prvm_router: listening on 127.0.0.1:" << server.port()
                << std::endl;
    } else {
      std::cout << "prvm_router: listening on " << socket_path << std::endl;
    }

    std::unique_ptr<obs::ExpositionServer> exposition;
    if (metrics_port.has_value()) {
      exposition = std::make_unique<obs::ExpositionServer>(
          [] { return obs::Registry::global().render_prometheus(); }, *metrics_port);
      exposition->start();
      std::cout << "prvm_router: metrics on 127.0.0.1:" << exposition->port()
                << std::endl;
    }

    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    auto next_map_save =
        std::chrono::steady_clock::now() + std::chrono::seconds(map_save_s);
    while (g_shutdown == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (map_file.has_value() && map_save_s > 0 &&
          std::chrono::steady_clock::now() >= next_map_save) {
        next_map_save += std::chrono::seconds(map_save_s);
        router.save_vm_map(*map_file);
      }
    }

    std::cout << "prvm_router: draining..." << std::endl;
    server.stop();  // no new client requests
    if (map_file.has_value() && router.save_vm_map(*map_file)) {
      std::cout << "prvm_router: saved vm map (" << router.vm_map_size()
                << " entries) to " << *map_file << "\n";
    }
    if (embedded != nullptr) {
      embedded->drain();  // per-cell final snapshots
      for (std::size_t k = 0; k < embedded->size(); ++k) {
        const ServiceStats s = embedded->cell(k).stats();
        std::cout << "prvm_router: cell " << k << " drained at op_seq "
                  << s.op_seq << " (" << s.placed << " placed)\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "prvm_router: fatal: " << e.what() << "\n";
    return 1;
  }
}
