#!/usr/bin/env python3
"""Validators for the prvm observability surfaces (no third-party deps).

Modes:

  check_metrics.py prom SCRAPE [SCRAPE2]
      Validate Prometheus text exposition (v0.0.4, as prvm_serve emits it):
      every line parses, every sample belongs to a declared # TYPE family,
      counters end in _total, histogram bucket counts are cumulative and
      nondecreasing, the +Inf bucket equals _count, and _sum is present.
      With a second scrape of the same process, counters and histogram
      count/sum must be monotonic (scrape2 >= scrape1).

  check_metrics.py opjson FILE [--require NAME ...]
      Validate a `metrics` protocol-op response (one JSON line, as printed
      by `prvm_loadgen --metrics`): histogram summaries carry
      count/sum/mean/p50/p90/p99/p999 with p50 <= p90 <= p99 <= p999, and
      each --require'd histogram has a nonzero count. Defaults require the
      three pipeline histograms the acceptance bar names: queue wait, WAL
      flush and placement compute.
"""
import json
import re
import sys

TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_][a-zA-Z0-9_]*) "
                     r"(counter|gauge|histogram|summary|untyped)$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_][a-zA-Z0-9_]*)(?:\{([^{}]*)\})? "
                       r"(-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|[+-]Inf|NaN)$")

errors = []


def fail(msg):
    errors.append(msg)


def to_float(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_exposition(path):
    """Returns (types, samples): declared families and ordered samples."""
    types = {}
    samples = []  # (name, labels, value) in file order
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("#"):
                m = TYPE_RE.match(line)
                if m is None:
                    # HELP and free comments are legal; TYPE must parse.
                    if line.startswith("# TYPE"):
                        fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
                    continue
                types[m.group(1)] = m.group(2)
                continue
            m = SAMPLE_RE.match(line)
            if m is None:
                fail(f"{path}:{lineno}: unparseable sample line: {line!r}")
                continue
            samples.append((m.group(1), m.group(2) or "", to_float(m.group(3))))
    return types, samples


def family_of(name, types):
    """The declared family a sample belongs to, or None."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def check_scrape(path):
    types, samples = parse_exposition(path)
    seen_families = set()
    histograms = {}  # family -> {"buckets": [(le, v)...], "sum": v, "count": v}
    flat = {}  # (name, labels) -> value, for cross-scrape monotonicity

    for name, labels, value in samples:
        family = family_of(name, types)
        if family is None:
            fail(f"{path}: sample {name!r} has no # TYPE declaration")
            continue
        seen_families.add(family)
        flat[(name, labels)] = value
        kind = types[family]
        if kind == "counter":
            if not family.endswith("_total"):
                fail(f"{path}: counter {family!r} does not end in _total")
            if value < 0:
                fail(f"{path}: counter {name} is negative: {value}")
        elif kind == "histogram":
            h = histograms.setdefault(family, {"buckets": [], "sum": None, "count": None})
            if name == family + "_bucket":
                le = dict(pair.split("=", 1) for pair in labels.split(",")).get("le")
                if le is None:
                    fail(f"{path}: {name} sample without an le label")
                    continue
                h["buckets"].append((to_float(le.strip('"')), value))
            elif name == family + "_sum":
                h["sum"] = value
            elif name == family + "_count":
                h["count"] = value

    for family, h in histograms.items():
        if not h["buckets"]:
            fail(f"{path}: histogram {family} has no buckets")
            continue
        if h["sum"] is None:
            fail(f"{path}: histogram {family} is missing _sum")
        if h["count"] is None:
            fail(f"{path}: histogram {family} is missing _count")
            continue
        les = [le for le, _ in h["buckets"]]
        values = [v for _, v in h["buckets"]]
        if les != sorted(les):
            fail(f"{path}: histogram {family} bucket le values not sorted")
        if values != sorted(values):
            fail(f"{path}: histogram {family} bucket counts not cumulative")
        if les[-1] != float("inf"):
            fail(f"{path}: histogram {family} is missing the +Inf bucket")
        elif values[-1] != h["count"]:
            fail(f"{path}: histogram {family} +Inf bucket {values[-1]} != "
                 f"_count {h['count']}")

    for family in types:
        if family not in seen_families:
            fail(f"{path}: # TYPE {family} declared but no samples follow")
    return types, flat


def check_monotonic(types, first, second, path1, path2):
    for (name, labels), before in first.items():
        family = family_of(name, types)
        kind = types.get(family)
        monotonic = kind == "counter" or (
            kind == "histogram" and (name.endswith("_count") or name.endswith("_sum")))
        if not monotonic:
            continue
        after = second.get((name, labels))
        if after is None:
            fail(f"{path2}: {name}{{{labels}}} present in {path1} but missing here")
        elif after < before:
            fail(f"{name}{{{labels}}} went backwards across scrapes: "
                 f"{before} -> {after}")


def run_prom(argv):
    if not argv:
        print("usage: check_metrics.py prom SCRAPE [SCRAPE2]", file=sys.stderr)
        return 2
    types1, flat1 = check_scrape(argv[0])
    n_scrapes = 1
    if len(argv) > 1:
        types2, flat2 = check_scrape(argv[1])
        if types1 != types2:
            fail(f"TYPE declarations differ between {argv[0]} and {argv[1]}")
        check_monotonic(types1, flat1, flat2, argv[0], argv[1])
        n_scrapes = 2
    if errors:
        return 1
    print(f"OK: {len(types1)} metric families, {len(flat1)} samples, "
          f"{n_scrapes} scrape(s) validated")
    return 0


DEFAULT_REQUIRED = ["prvm_queue_wait_ns", "prvm_wal_flush_ns", "prvm_place_compute_ns"]


def run_opjson(argv):
    if not argv:
        print("usage: check_metrics.py opjson FILE [--require NAME ...]",
              file=sys.stderr)
        return 2
    required = DEFAULT_REQUIRED
    if "--require" in argv:
        i = argv.index("--require")
        required = argv[i + 1:]
        argv = argv[:i]
    with open(argv[0], "r", encoding="utf-8") as f:
        doc = json.load(f)
    metrics = doc.get("metrics", doc)  # accept the raw registry object too
    for group in ("counters", "gauges", "histograms"):
        if group not in metrics:
            fail(f"metrics object is missing {group!r}")
    if errors:
        report()
        return 1
    for name, value in metrics["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            fail(f"counter {name} has a bad value: {value!r}")
    for name, h in metrics["histograms"].items():
        for key in ("count", "sum", "mean", "p50", "p90", "p99", "p999"):
            if key not in h:
                fail(f"histogram {name} is missing {key!r}")
        if all(k in h for k in ("p50", "p90", "p99", "p999")):
            if not h["p50"] <= h["p90"] <= h["p99"] <= h["p999"]:
                fail(f"histogram {name} quantiles are not ordered: "
                     f"p50={h['p50']} p90={h['p90']} p99={h['p99']} "
                     f"p999={h['p999']}")
    for name in required:
        h = metrics["histograms"].get(name)
        if h is None:
            fail(f"required histogram {name} is absent")
        elif h.get("count", 0) <= 0:
            fail(f"required histogram {name} has zero samples")
    if errors:
        return 1
    print(f"OK: {len(metrics['counters'])} counters, "
          f"{len(metrics['histograms'])} histograms, "
          f"{len(required)} required histograms nonzero")
    return 0


def report():
    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)


def main():
    if len(sys.argv) < 2 or sys.argv[1] not in ("prom", "opjson"):
        print(__doc__, file=sys.stderr)
        return 2
    rc = run_prom(sys.argv[2:]) if sys.argv[1] == "prom" else run_opjson(sys.argv[2:])
    report()
    return rc


if __name__ == "__main__":
    sys.exit(main())
