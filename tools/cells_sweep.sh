#!/usr/bin/env bash
# Cell-count x parallel-workers x flush-group tuning sweep.
#
# Runs bench_cells in --sweep mode and prints the grid sorted by aggregate
# churn throughput, so an operator picking a deployment shape for a box can
# read the best (cells, workers, flush_group) combination straight off. The
# JSON records hardware_threads: on a single-core box every parallel knob
# only adds overhead, and the output says so rather than hiding it.
#
# Usage: tools/cells_sweep.sh [BUILD_DIR] [JSON_OUT]
#   PRVM_FAST=1   shrink fleet and op counts for a smoke run
set -euo pipefail

BUILD_DIR="${1:-build}"
JSON_OUT="${2:-BENCH_cells.json}"
BENCH="$BUILD_DIR/bench/bench_cells"
[ -x "$BENCH" ] || { echo "build bench_cells first (looked at $BENCH)"; exit 1; }

"$BENCH" --sweep --json "$JSON_OUT"

python3 - "$JSON_OUT" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
threads = data.get("hardware_threads", 0)
rows = sorted(data.get("sweep", []),
              key=lambda r: -r["aggregate_churn_placements_per_sec"])
print(f"\nsweep on {threads} hardware thread(s), "
      f"{data['fleet_pms']} PMs, {data['drivers']} drivers:")
print(f"{'cells':>5} {'workers':>7} {'flush':>5} {'churn pl/s':>12} {'vs serial 1-cell':>16}")
for r in rows:
    print(f"{r['cells']:>5} {r['parallel_workers']:>7} {r['flush_group']:>5} "
          f"{r['aggregate_churn_placements_per_sec']:>12.0f} "
          f"{r['speedup_over_serial_one_cell']:>15.2f}x")
if threads <= 2 and rows:
    print("note: few hardware threads -- parallel knobs mostly measure overhead here")
EOF
echo "wrote $JSON_OUT"
