#!/usr/bin/env bash
# Crash-recovery smoke test for the placement daemon.
#
# Boots prvm_serve, places 500 VMs through the real socket protocol, kills
# the daemon with SIGKILL (no drain, no final snapshot), restarts it on the
# same data directory and asserts the recovered ledger is identical to the
# pre-kill one (state digest, VM count, op sequence). This is the end-to-end
# companion of the in-process differential tests in
# tests/test_service_recovery.cpp.
#
# Usage: tools/crash_recovery_smoke.sh [BUILD_DIR] [extra flags...]
# e.g.   tools/crash_recovery_smoke.sh build --parallel-workers 4 --flush-group 256
#        tools/crash_recovery_smoke.sh build --binary    # PRVB1 clients
# `--binary` goes to the loadgen clients (the daemon negotiates per
# connection); everything else goes to prvm_serve.
set -euo pipefail

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift
SERVE_ARGS=()
LOADGEN_ARGS=()
for arg in "$@"; do
  if [ "$arg" = "--binary" ]; then LOADGEN_ARGS+=("$arg"); else SERVE_ARGS+=("$arg"); fi
done
SERVE="$BUILD_DIR/tools/prvm_serve"
LOADGEN="$BUILD_DIR/tools/prvm_loadgen"
[ -x "$SERVE" ] && [ -x "$LOADGEN" ] || { echo "build prvm_serve + prvm_loadgen first"; exit 1; }

WORK="$(mktemp -d)"
SOCK="$WORK/prvm.sock"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
  "$SERVE" --socket "$SOCK" --fleet 2000 --data-dir "$WORK/data" \
    ${SERVE_ARGS[@]+"${SERVE_ARGS[@]}"} >> "$WORK/serve.log" 2>&1 &
  SERVE_PID=$!
  # First boot builds the score tables (later boots hit the cache); allow
  # plenty of time before declaring the daemon dead.
  for _ in $(seq 1 600); do
    [ -S "$SOCK" ] && return 0
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
      echo "FAIL: daemon died during startup"; cat "$WORK/serve.log"; exit 1
    fi
    sleep 0.5
  done
  echo "FAIL: daemon did not come up"; cat "$WORK/serve.log"; exit 1
}

field() { sed -n "s/.*$2=\\([^ ]*\\).*/\\1/p" <<< "$1"; }

start_daemon
BEFORE="$("$LOADGEN" --socket "$SOCK" ${LOADGEN_ARGS[@]+"${LOADGEN_ARGS[@]}"} --place 500)"
echo "before kill -9:  $BEFORE"

kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
rm -f "$SOCK"

start_daemon
AFTER="$("$LOADGEN" --socket "$SOCK" ${LOADGEN_ARGS[@]+"${LOADGEN_ARGS[@]}"} --stats)"
echo "after recovery:  $AFTER"

FAILED=0
for key in state_digest vm_count used_pms op_seq; do
  if [ "$(field "$BEFORE" $key)" != "$(field "$AFTER" $key)" ]; then
    echo "FAIL: $key diverged: $(field "$BEFORE" $key) -> $(field "$AFTER" $key)"
    FAILED=1
  fi
done
[ "$(field "$AFTER" recovered)" = "true" ] || { echo "FAIL: daemon did not report recovery"; FAILED=1; }
[ "$(field "$BEFORE" vm_count)" = "500" ] || { echo "FAIL: expected 500 VMs placed"; FAILED=1; }

# Graceful shutdown still works on the recovered daemon.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: graceful drain exited non-zero"; FAILED=1; }
SERVE_PID=""

if [ "$FAILED" -ne 0 ]; then
  cat "$WORK/serve.log"
  exit 1
fi
echo "OK: state recovered bit-identically after kill -9"
