// prvm_loadgen — load generator / measurement client for prvm_serve.
//
// Replays an EC2-mix placement workload against a running daemon over the
// JSON-lines protocol and reports end-to-end placements/sec and
// p50/p99/p999 request latency (send -> response received, i.e. including
// queueing, batching, WAL flush and the socket round trip) in the same
// --json schema as bench_placement_throughput. Latencies are accumulated in
// one shared obs::Histogram (the daemon's own histogram type — lock-free
// across connections, quantiles within 12.5%), not a per-sample vector.
//
// Modes:
//   --fill-pms N --ops M   fill the fleet to N used PMs, then run M
//                          release+place churn ops at that operating point
//                          (the BENCH_service.json scenario)
//   --place N              place exactly N VMs and print the daemon's stats
//                          line (crash-recovery smoke test hook)
//   --stats                print the daemon's stats line and exit
//   --metrics              print the daemon's metrics-op JSON and exit
//   --util-feed N          collector-agent mode: push skewed per-VM `util`
//                          samples for VMs 1..N so one PM reads overloaded
//                          (drives the online rebalancer; see DESIGN.md §9)
//
// --binary switches the workload connections to the PRVB1 binary protocol
// (binary_protocol.hpp): same requests, same semantics, measured against
// the same daemon — the json-vs-binary rows in BENCH_service_socket.json
// come from two runs differing only in this flag. Stats/metrics queries
// stay JSON-lines on their own connections either way.
#include <atomic>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cluster/catalog.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "service/binary_protocol.hpp"
#include "service/protocol.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

using Clock = std::chrono::steady_clock;

/// One daemon (or router) to aim at. Multiple --endpoint flags drive several
/// targets from one loadgen run: connections are dealt round-robin across
/// them and the report breaks placements/sec out per target.
struct Endpoint {
  std::string spec;         ///< as given on the command line (report label)
  std::string socket_path;  ///< Unix-domain path; empty selects TCP
  int port = -1;
};

struct Options {
  std::string socket_path = "/tmp/prvm.sock";
  std::string host = "127.0.0.1";
  int port = -1;  ///< >= 0 selects TCP
  /// Resolved targets (from --endpoint flags, else one from --socket/--port).
  std::vector<Endpoint> endpoints;
  std::size_t connections = 4;
  /// --sweep: fill+churn rounds at each of these connection counts against
  /// one warm daemon (workers release their VMs at round end, so every
  /// round fills from an empty fleet and rounds are comparable).
  std::vector<std::size_t> sweep;
  std::size_t pipeline = 64;
  std::size_t fill_pms = 0;
  std::size_t churn_ops = 2000;
  std::size_t place_exact = 0;
  bool stats_only = false;
  bool metrics_only = false;
  std::string json_path;
  /// --util-feed N: collector-agent mode — push per-VM `util` samples for
  /// VMs 1..N, skewed so one PM reads hot (the rebalancer smoke scenario).
  std::size_t util_feed = 0;
  std::size_t util_rounds = 10;
  double util_interval_ms = 200.0;
  double util_hot = 1.0;    ///< fraction fed to VMs on the hot PM
  double util_cool = 0.05;  ///< fraction fed to everyone else
  std::optional<std::uint64_t> hot_pm;  ///< default: the fullest PM
  /// --binary: speak PRVB1 on the workload connections.
  bool binary = false;
};

/// A blocking client connection with FIFO pipelining: JSON-lines by
/// default, PRVB1 binary when constructed with binary = true (the preamble
/// goes out at connect). The typed send helpers encode into one reused
/// buffer, so a warm connection sends without allocating.
class Client {
 public:
  explicit Client(const Endpoint& endpoint, bool binary = false) : binary_(binary) {
    if (endpoint.port >= 0) {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.port));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        throw std::runtime_error("cannot connect to 127.0.0.1:" + std::to_string(endpoint.port));
      }
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    } else {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, endpoint.socket_path.c_str(), sizeof(addr.sun_path) - 1);
      if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        throw std::runtime_error("cannot connect to " + endpoint.socket_path);
      }
    }
    if (binary_) {
      out_.assign(kBinaryPreamble, sizeof(kBinaryPreamble));
      send_buffer();
    }
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send_line(const std::string& line) {
    std::size_t written = 0;
    while (written < line.size()) {
      const ::ssize_t n = ::send(fd_, line.data() + written, line.size() - written, MSG_NOSIGNAL);
      if (n <= 0) throw std::runtime_error("connection lost while sending");
      written += static_cast<std::size_t>(n);
    }
  }

  /// Encodes and sends one request in the connection's protocol.
  void send_request(const Request& request) {
    out_.clear();
    if (binary_) {
      encode_binary_request_into(request, out_);
    } else {
      encode_request_into(request, out_);
    }
    send_buffer();
  }

  void send_place(std::uint64_t vm, std::size_t type) {
    Request request;
    request.op = RequestOp::kPlace;
    request.vm_id = vm;
    request.vm_type_index = type;
    send_request(request);
  }

  void send_release(std::uint64_t vm) {
    Request request;
    request.op = RequestOp::kRelease;
    request.vm_id = vm;
    send_request(request);
  }

  void send_lookup(std::uint64_t vm) {
    Request request;
    request.op = RequestOp::kLookup;
    request.vm_id = vm;
    send_request(request);
  }

  void send_util(std::uint64_t vm, double cpu) {
    Request request;
    request.op = RequestOp::kUtil;
    request.vm_id = vm;
    request.cpu = cpu;
    send_request(request);
  }

  /// Next response, decoded in the connection's protocol (blocking).
  Response recv_response() {
    if (!binary_) {
      std::string error;
      auto response = parse_response(recv_line(), &error);
      if (!response.has_value()) {
        throw std::runtime_error("bad response from daemon: " + error);
      }
      return std::move(*response);
    }
    while (true) {
      if (const auto frame = bframes_.next()) {
        if (frame->status != BinaryFrameBuffer::Status::kOk ||
            frame->kind != BinaryFrameKind::kResponse) {
          throw std::runtime_error("corrupt binary response stream from daemon");
        }
        std::string error;
        auto response = parse_binary_response(frame->payload, &error);
        if (!response.has_value()) {
          throw std::runtime_error("bad response from daemon: " + error);
        }
        return std::move(*response);
      }
      char buf[16 * 1024];
      const ::ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) throw std::runtime_error("connection closed by daemon");
      bframes_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

  /// Next response line (blocking); JSON-lines connections only.
  std::string recv_line() {
    while (true) {
      if (const auto frame = frames_.next()) {
        if (frame->oversized) continue;
        return frame->line;
      }
      char buf[16 * 1024];
      const ::ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) throw std::runtime_error("connection closed by daemon");
      frames_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

  JsonValue recv_json() {
    std::string error;
    auto doc = parse_json(recv_line(), &error);
    if (!doc.has_value()) throw std::runtime_error("bad response from daemon: " + error);
    return std::move(*doc);
  }

 private:
  void send_buffer() {
    std::size_t written = 0;
    while (written < out_.size()) {
      const ::ssize_t n =
          ::send(fd_, out_.data() + written, out_.size() - written, MSG_NOSIGNAL);
      if (n <= 0) throw std::runtime_error("connection lost while sending");
      written += static_cast<std::size_t>(n);
    }
  }

  int fd_ = -1;
  const bool binary_;
  std::string out_;  ///< reused encode buffer
  LineBuffer frames_;
  BinaryFrameBuffer bframes_{kMaxBinaryResponseBytes};  ///< responses exceed the request cap
};

double field_number(const JsonValue& doc, const char* key) {
  const JsonValue* value = doc.find(key);
  return value != nullptr && value->kind == JsonValue::Kind::kNumber ? value->number : 0.0;
}

JsonValue query_stats(const Endpoint& endpoint) {
  Client client(endpoint);
  client.send_line("{\"op\":\"stats\"}\n");
  return client.recv_json();
}

/// used_pms summed across every target (the fill-phase progress signal).
std::size_t total_used_pms(const Options& options) {
  std::size_t used = 0;
  for (const Endpoint& endpoint : options.endpoints) {
    used += static_cast<std::size_t>(field_number(query_stats(endpoint), "used_pms"));
  }
  return used;
}

struct WorkerResult {
  std::size_t fill_placed = 0;
  std::size_t fill_rejected = 0;
  std::size_t churn_places = 0;
  std::size_t retries = 0;      ///< resends after queue_full / degraded_storage
  double churn_seconds = 0.0;   ///< this connection's own churn wall clock
};

/// Churn place latencies, all connections; obs::Histogram is lock-free
/// across the worker threads by construction.
obs::Histogram g_churn_latency_ns;

struct Inflight {
  Clock::time_point sent;
  bool is_place = false;
  bool timed = false;
  std::uint64_t vm = 0;
  std::size_t type = 0;
  std::uint32_t attempt = 0;  ///< retries already spent on this request
};

/// Give up retrying a single request after this many attempts; the daemon is
/// either persistently degraded or persistently overloaded, and the loadgen
/// should finish rather than spin.
constexpr std::uint32_t kMaxAttempts = 8;

/// Backoff before attempt `attempt+1`: the server's retry_after_ms hint,
/// doubled per attempt, capped, with +/-25% jitter so retries from many
/// connections do not re-arrive as one thundering herd.
double retry_delay_ms(double hint_ms, std::uint32_t attempt, Rng& rng) {
  double delay = std::max(hint_ms, 1.0) * static_cast<double>(1u << std::min(attempt, 9u));
  delay = std::min(delay, 500.0);
  return delay * rng.uniform(0.75, 1.25);
}

// One connection's workload: pipelined fill until the coordinator calls the
// fleet full, then `churn_ops` release+place pairs.
void run_worker(const Options& options, const std::vector<double>& mix, std::size_t index,
                std::size_t churn_ops, std::atomic<bool>& fill_done, WorkerResult& result) {
  // Connections are dealt round-robin across the targets.
  Client client(options.endpoints[index % options.endpoints.size()], options.binary);
  Rng rng(0x10adull * (index + 1));
  // Per-connection id space: the protocol caps VM ids at 32 bits, so each
  // connection gets a 16M-id band.
  std::uint64_t next_vm = (static_cast<std::uint64_t>(index) + 1) << 24;
  std::vector<std::uint64_t> live;
  std::deque<Inflight> inflight;

  // Requests bounced with a retry hint (queue_full / degraded_storage) wait
  // here until their backoff deadline, then go back on the wire.
  struct Resend {
    Clock::time_point due;
    Inflight request;
  };
  std::deque<Resend> resend;

  const auto draw_type = [&] { return rng.weighted_index(mix); };
  const auto send_inflight = [&](const Inflight& r) {
    if (r.is_place) {
      client.send_place(r.vm, r.type);
    } else {
      client.send_release(r.vm);
    }
  };

  // Puts every due resend back on the wire. When `wait` and nothing is in
  // flight, sleeps until the earliest deadline first (otherwise the worker
  // would busy-spin or deadlock waiting for a response that was never sent).
  const auto flush_resends = [&](bool wait) {
    if (resend.empty()) return;
    if (wait && inflight.empty()) {
      auto earliest = resend.front().due;
      for (const Resend& r : resend) earliest = std::min(earliest, r.due);
      std::this_thread::sleep_until(earliest);
    }
    const auto now = Clock::now();
    for (std::size_t i = 0; i < resend.size();) {
      if (resend[i].due <= now) {
        send_inflight(resend[i].request);
        inflight.push_back(resend[i].request);
        resend[i] = resend.back();
        resend.pop_back();
      } else {
        ++i;
      }
    }
  };

  // Settles the oldest in-flight request. Returns: 1 = accepted, 0 = final
  // rejection, 2 = requeued for retry (not yet resolved).
  const auto settle_one = [&](bool timing) -> int {
    Inflight front = inflight.front();
    inflight.pop_front();
    const Response reply = client.recv_response();
    bool accepted = reply.ok;
    if (!accepted) {
      const std::string& reason = reply.error;
      if ((reason == "queue_full" || reason == "degraded_storage") &&
          front.attempt < kMaxAttempts) {
        const double delay = retry_delay_ms(reply.retry_after_ms.value_or(0.0),
                                            front.attempt, rng);
        ++front.attempt;
        ++result.retries;
        resend.push_back(Resend{
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(delay)),
            front});
        return 2;
      }
      // Retry idempotency: a *retried* place answered duplicate_vm means an
      // earlier attempt was actually applied (degraded demotion); likewise a
      // retried release answered unknown_vm already released the VM.
      if (front.attempt > 0 &&
          ((front.is_place && reason == "duplicate_vm") ||
           (!front.is_place && reason == "unknown_vm"))) {
        accepted = true;
      }
    }
    if (front.is_place) {
      if (accepted) {
        live.push_back(front.vm);
        if (timing) ++result.churn_places;
        else ++result.fill_placed;
      } else if (!timing) {
        ++result.fill_rejected;
      }
      if (timing && front.timed) {
        // Latency is measured from the FIRST send, so retried requests
        // report the true end-to-end cost including backoff.
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - front.sent);
        g_churn_latency_ns.record(static_cast<std::uint64_t>(ns.count()));
      }
    }
    return accepted ? 1 : 0;
  };

  // Fill phase: stream placements until the coordinator says the fleet hit
  // the target (or the daemon has been rejecting for a while). Retry
  // requeues do not count toward the rejection streak.
  std::size_t rejected_streak = 0;
  while (!fill_done.load(std::memory_order_relaxed) && rejected_streak < 512) {
    flush_resends(false);
    while (inflight.size() < options.pipeline) {
      Inflight request;
      request.is_place = true;
      request.vm = next_vm++;
      request.type = draw_type();
      request.sent = Clock::now();
      client.send_place(request.vm, request.type);
      inflight.push_back(request);
    }
    while (inflight.size() > options.pipeline / 2) {
      switch (settle_one(false)) {
        case 1: rejected_streak = 0; break;
        case 0: ++rejected_streak; break;
        default: break;
      }
    }
  }
  while (!inflight.empty() || !resend.empty()) {
    flush_resends(true);
    if (!inflight.empty()) settle_one(false);
  }

  // Churn phase: release one, place one; only place latencies are timed.
  // `settled` counts final resolutions only, so every request is eventually
  // accepted, finally rejected, or dropped after kMaxAttempts.
  const auto churn_start = Clock::now();
  std::size_t sent_pairs = 0;
  std::size_t settled = 0;
  while (settled < 2 * churn_ops) {
    flush_resends(false);
    while (sent_pairs < churn_ops && inflight.size() + 2 <= options.pipeline && !live.empty()) {
      const std::size_t pick = rng.uniform_index(live.size());
      const std::uint64_t victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      client.send_release(victim);
      inflight.push_back(Inflight{Clock::now(), false, false, victim, 0, 0});

      Inflight request;
      request.is_place = true;
      request.timed = true;
      request.vm = next_vm++;
      request.type = draw_type();
      request.sent = Clock::now();
      client.send_place(request.vm, request.type);
      inflight.push_back(request);
      ++sent_pairs;
    }
    if (inflight.empty()) {
      if (resend.empty()) break;  // ran out of live VMs (tiny fleet)
      flush_resends(true);
      continue;
    }
    if (settle_one(true) != 2) ++settled;
  }
  while (!inflight.empty() || !resend.empty()) {
    flush_resends(true);
    if (!inflight.empty()) settle_one(true);
  }
  result.churn_seconds = std::chrono::duration<double>(Clock::now() - churn_start).count();

  // Drain: release this connection's surviving VMs (untimed) so the next
  // sweep round fills from the same empty operating point — a worker can
  // only churn VMs it placed itself, so inheriting a saturated fleet would
  // starve every round after the first.
  while (!live.empty() || !inflight.empty() || !resend.empty()) {
    flush_resends(true);
    while (!live.empty() && inflight.size() < options.pipeline) {
      const std::uint64_t victim = live.back();
      live.pop_back();
      client.send_release(victim);
      inflight.push_back(Inflight{Clock::now(), false, false, victim, 0, 0});
    }
    if (!inflight.empty()) settle_one(false);
  }
}

/// Samples recorded between two snapshots of the same histogram (the global
/// latency histogram accumulates across sweep rounds; quantiles per round
/// need the delta).
obs::HistogramSnapshot snapshot_delta(const obs::HistogramSnapshot& now,
                                      const obs::HistogramSnapshot& prev) {
  obs::HistogramSnapshot delta = now;
  for (std::size_t i = 0; i < delta.counts.size() && i < prev.counts.size(); ++i) {
    delta.counts[i] -= prev.counts[i];
  }
  delta.count -= prev.count;
  delta.sum -= prev.sum;
  return delta;
}

/// One fill+churn round at a given connection count. Each round fills from
/// an empty fleet (workers release their VMs when a round ends), so rounds
/// are directly comparable.
struct RoundResult {
  std::size_t connections = 0;
  std::size_t fill_placed = 0;
  std::size_t churn_places = 0;
  std::size_t retries = 0;
  double fill_seconds = 0.0;
  double churn_seconds = 0.0;  ///< coordinator wall clock, first send -> last join
  std::size_t used_pms = 0;
  obs::HistogramSnapshot latency;     ///< this round's place latencies only
  std::vector<double> per_conn_pps;   ///< per-connection churn placement rates
  /// Per-target sums of the per-connection rates (index = endpoint index);
  /// their sum is the aggregate rate the multi-cell bench gates on.
  std::vector<double> per_endpoint_pps;
};

RoundResult run_round(const Options& options, const std::vector<double>& mix,
                      std::size_t connections) {
  RoundResult round;
  round.connections = connections;
  const obs::HistogramSnapshot before = g_churn_latency_ns.snapshot();

  std::atomic<bool> fill_done{options.fill_pms == 0};
  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  const std::size_t ops_per_conn = (options.churn_ops + connections - 1) / connections;

  const auto fill_start = Clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    workers.emplace_back(
        [&, c] { run_worker(options, mix, c, ops_per_conn, fill_done, results[c]); });
  }

  // Coordinator: poll daemon stats until the fill target is reached.
  if (options.fill_pms > 0) {
    while (!fill_done.load()) {
      if (total_used_pms(options) >= options.fill_pms) {
        fill_done.store(true);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    round.fill_seconds = std::chrono::duration<double>(Clock::now() - fill_start).count();
  }
  // The operating point, sampled while churn holds it (the workers release
  // everything before joining, so querying after the join would read 0).
  round.used_pms = total_used_pms(options);
  for (auto& worker : workers) worker.join();

  round.per_endpoint_pps.assign(options.endpoints.size(), 0.0);
  for (std::size_t c = 0; c < results.size(); ++c) {
    const WorkerResult& r = results[c];
    round.fill_placed += r.fill_placed;
    round.churn_places += r.churn_places;
    round.retries += r.retries;
    const double pps = r.churn_seconds > 0 ? r.churn_places / r.churn_seconds : 0.0;
    round.per_conn_pps.push_back(pps);
    round.per_endpoint_pps[c % options.endpoints.size()] += pps;
    // Slowest connection's own churn window: excludes the untimed drain,
    // which the coordinator's join-to-join wall clock would fold in.
    round.churn_seconds = std::max(round.churn_seconds, r.churn_seconds);
  }
  round.latency = snapshot_delta(g_churn_latency_ns.snapshot(), before);
  return round;
}

/// Collector-agent mode: feed per-VM utilization samples, skewed so one PM
/// reads hot. Every round re-looks-up vm -> pm, so once the rebalancer moves
/// a VM off the hot PM the feed reports it cool at its new home — the
/// hotspot drains for real instead of chasing stale assignments.
int run_util_feed(const Options& options) {
  Client client(options.endpoints.front(), options.binary);

  // Pipelined lookup of VMs 1..N; unplaced ids are simply skipped.
  const auto lookup_all = [&] {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> placed;  // vm, pm
    std::deque<std::uint64_t> inflight;
    std::uint64_t next = 1;
    while (next <= options.util_feed || !inflight.empty()) {
      while (next <= options.util_feed && inflight.size() < options.pipeline) {
        client.send_lookup(next);
        inflight.push_back(next);
        ++next;
      }
      const Response reply = client.recv_response();
      const std::uint64_t vm = inflight.front();
      inflight.pop_front();
      if (reply.ok) placed.emplace_back(vm, reply.pm.value_or(0));
    }
    return placed;
  };

  auto placed = lookup_all();
  if (placed.empty()) {
    std::cerr << "prvm_loadgen: --util-feed found no placed VMs in 1.."
              << options.util_feed << "\n";
    return 1;
  }
  // Hot PM defaults to the fullest one: the densest target is the one a
  // skewed feed can most plausibly push over the threshold.
  std::uint64_t hot_pm = 0;
  if (options.hot_pm.has_value()) {
    hot_pm = *options.hot_pm;
  } else {
    std::unordered_map<std::uint64_t, std::size_t> residents;
    for (const auto& [vm, pm] : placed) ++residents[pm];
    std::size_t best = 0;
    for (const auto& [pm, count] : residents) {
      if (count > best || (count == best && pm < hot_pm)) {
        best = count;
        hot_pm = pm;
      }
    }
  }

  std::size_t samples = 0;
  for (std::size_t round = 0; round < options.util_rounds; ++round) {
    if (round > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options.util_interval_ms));
      placed = lookup_all();
    }
    std::size_t hot_residents = 0;
    std::deque<bool> inflight;  // pipelined util acks (content ignored)
    for (const auto& [vm, pm] : placed) {
      const bool hot = pm == hot_pm;
      hot_residents += hot ? 1 : 0;
      client.send_util(vm, hot ? options.util_hot : options.util_cool);
      inflight.push_back(true);
      ++samples;
      while (inflight.size() >= options.pipeline) {
        client.recv_response();
        inflight.pop_front();
      }
    }
    while (!inflight.empty()) {
      client.recv_response();
      inflight.pop_front();
    }
    std::printf("util-feed[%zu]: hot_pm=%llu residents=%zu vms=%zu\n", round,
                static_cast<unsigned long long>(hot_pm), hot_residents, placed.size());
    std::fflush(stdout);
  }
  std::printf("util-feed: %zu samples over %zu rounds\n", samples, options.util_rounds);
  return 0;
}

void print_stats_line(const JsonValue& doc) {
  // Re-encode the interesting fields verbatim for shell tooling.
  std::cout << "used_pms=" << static_cast<std::uint64_t>(field_number(doc, "used_pms"))
            << " vm_count=" << static_cast<std::uint64_t>(field_number(doc, "vm_count"))
            << " placed=" << static_cast<std::uint64_t>(field_number(doc, "placed"))
            << " op_seq=" << static_cast<std::uint64_t>(field_number(doc, "op_seq"));
  const JsonValue* digest = doc.find("state_digest");
  if (digest != nullptr && digest->kind == JsonValue::Kind::kString) {
    std::cout << " state_digest=" << digest->string;
  }
  const JsonValue* recovered = doc.find("recovered");
  if (recovered != nullptr && recovered->kind == JsonValue::Kind::kBool) {
    std::cout << " recovered=" << (recovered->boolean ? "true" : "false");
  }
  // A router's merged stats lead with the cell count; single-cell daemons
  // have no such member and keep the historical line shape.
  const JsonValue* cells = doc.find("cells");
  if (cells != nullptr && cells->kind == JsonValue::Kind::kNumber) {
    std::cout << " cells=" << static_cast<std::uint64_t>(cells->number);
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace prvm

int main(int argc, char** argv) {
  using namespace prvm;

  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.socket_path = value();
    } else if (arg == "--port") {
      options.port = std::stoi(value());
    } else if (arg == "--endpoint") {
      // unix:PATH or tcp:PORT; repeat to drive several daemons (or routers)
      // from one run, connections dealt round-robin across them.
      const std::string spec = value();
      Endpoint endpoint;
      endpoint.spec = spec;
      if (spec.rfind("unix:", 0) == 0) {
        endpoint.socket_path = spec.substr(5);
      } else if (spec.rfind("tcp:", 0) == 0) {
        endpoint.port = std::stoi(spec.substr(4));
      } else {
        std::cerr << "bad --endpoint '" << spec << "' (want unix:PATH or tcp:PORT)\n";
        return 2;
      }
      options.endpoints.push_back(std::move(endpoint));
    } else if (arg == "--connections") {
      options.connections = std::stoull(value());
    } else if (arg == "--sweep") {
      // Comma-separated connection counts, e.g. --sweep 1,2,4,8.
      std::string list = value();
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(pos, comma - pos);
        if (!item.empty()) options.sweep.push_back(std::stoull(item));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--pipeline") {
      options.pipeline = std::max<std::size_t>(4, std::stoull(value()));
    } else if (arg == "--fill-pms") {
      options.fill_pms = std::stoull(value());
    } else if (arg == "--ops") {
      options.churn_ops = std::stoull(value());
    } else if (arg == "--place") {
      options.place_exact = std::stoull(value());
    } else if (arg == "--stats") {
      options.stats_only = true;
    } else if (arg == "--metrics") {
      options.metrics_only = true;
    } else if (arg == "--json") {
      options.json_path = value();
    } else if (arg == "--util-feed") {
      options.util_feed = std::stoull(value());
    } else if (arg == "--util-rounds") {
      options.util_rounds = std::stoull(value());
    } else if (arg == "--util-interval-ms") {
      options.util_interval_ms = std::stod(value());
    } else if (arg == "--util-hot") {
      options.util_hot = std::stod(value());
    } else if (arg == "--util-cool") {
      options.util_cool = std::stod(value());
    } else if (arg == "--hot-pm") {
      options.hot_pm = std::stoull(value());
    } else if (arg == "--binary") {
      options.binary = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--socket PATH | --port N | --endpoint SPEC ...] [--binary]\n"
                << "       [--connections C | --sweep C1,C2,..]\n"
                << "       [--pipeline W] [--fill-pms N --ops M [--json PATH]] | [--place N]\n"
                << "       | [--stats] | [--metrics]\n"
                << "       | [--util-feed N [--util-rounds R] [--util-interval-ms F]\n"
                << "          [--util-hot F] [--util-cool F] [--hot-pm P]]\n";
      return 2;
    }
  }
  if (options.endpoints.empty()) {
    Endpoint endpoint;
    if (options.port >= 0) {
      endpoint.port = options.port;
      endpoint.spec = "tcp:" + std::to_string(options.port);
    } else {
      endpoint.socket_path = options.socket_path;
      endpoint.spec = "unix:" + options.socket_path;
    }
    options.endpoints.push_back(std::move(endpoint));
  }

  try {
    if (options.stats_only) {
      for (const Endpoint& endpoint : options.endpoints) {
        print_stats_line(query_stats(endpoint));
      }
      return 0;
    }
    if (options.metrics_only) {
      // Raw scrape of the daemon's in-band metrics op: one JSON line with
      // every counter, gauge and histogram summary in the registry.
      for (const Endpoint& endpoint : options.endpoints) {
        Client client(endpoint);
        client.send_line("{\"op\":\"metrics\"}\n");
        std::cout << client.recv_line() << "\n";
      }
      return 0;
    }

    if (options.util_feed > 0) {
      return run_util_feed(options);
    }

    const Catalog catalog = ec2_sim_catalog();
    const std::vector<double> mix = default_vm_mix(catalog);

    if (options.place_exact > 0) {
      // Exact-count placement for the crash-recovery smoke test: every
      // acknowledged placement is crash-durable by the daemon's contract.
      // Transient rejections (queue_full, degraded_storage) are retried with
      // the server's backoff hint; a retried place answered duplicate_vm was
      // actually applied by an earlier attempt and counts as placed.
      Client client(options.endpoints.front(), options.binary);
      Rng rng(0x91aceull);  // fixed seed: the smoke test replays this exact stream
      std::size_t placed = 0;
      std::size_t retries = 0;
      std::uint64_t next_vm = 1;
      while (placed < options.place_exact) {
        const std::uint64_t vm = next_vm++;
        const std::size_t type = rng.weighted_index(mix);
        for (std::uint32_t attempt = 0;; ++attempt) {
          client.send_place(vm, type);
          const Response reply = client.recv_response();
          if (reply.ok) {
            ++placed;
            break;
          }
          if (attempt > 0 && reply.error == "duplicate_vm") {
            ++placed;
            break;
          }
          if ((reply.error == "queue_full" || reply.error == "degraded_storage") &&
              attempt < 2 * kMaxAttempts) {
            ++retries;
            const double delay =
                retry_delay_ms(reply.retry_after_ms.value_or(0.0), attempt, rng);
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
            continue;
          }
          break;  // hard rejection (no_capacity, ...): move on to the next VM
        }
      }
      if (retries > 0) std::printf("retries: %zu\n", retries);
      print_stats_line(query_stats(options.endpoints.front()));
      return 0;
    }

    // Throughput scenario: fill to --fill-pms used PMs, then churn --ops
    // pairs — once at --connections, or once per point of the --sweep (the
    // fleet is filled by the first round and stays at the operating point;
    // later rounds measure pure churn at their connection count).
    std::vector<std::size_t> counts =
        options.sweep.empty() ? std::vector<std::size_t>{options.connections} : options.sweep;
    std::vector<RoundResult> rounds;
    for (const std::size_t connections : counts) {
      rounds.push_back(run_round(options, mix, connections));
      const RoundResult& round = rounds.back();
      const double churn_pps =
          round.churn_seconds > 0 ? round.churn_places / round.churn_seconds : 0.0;
      if (round.fill_placed > 0) {
        std::printf("fill:  %zu placements in %.2fs (%.0f pl/s)\n", round.fill_placed,
                    round.fill_seconds,
                    round.fill_seconds > 0 ? round.fill_placed / round.fill_seconds : 0.0);
      }
      std::printf(
          "churn[c=%zu]: %zu placements in %.2fs   %8.0f pl/s   p50 %8.2f us   "
          "p99 %8.2f us   p999 %8.2f us\n",
          round.connections, round.churn_places, round.churn_seconds, churn_pps,
          round.latency.quantile(0.50) / 1000.0, round.latency.quantile(0.99) / 1000.0,
          round.latency.quantile(0.999) / 1000.0);
      std::printf("  per-connection pl/s:");
      for (const double pps : round.per_conn_pps) std::printf(" %.0f", pps);
      std::printf("   (%zu used PMs, pipeline %zu, %zu retries)\n", round.used_pms,
                  options.pipeline, round.retries);
      if (options.endpoints.size() > 1) {
        double aggregate = 0.0;
        for (std::size_t e = 0; e < options.endpoints.size(); ++e) {
          std::printf("  target %-24s %8.0f pl/s\n", options.endpoints[e].spec.c_str(),
                      round.per_endpoint_pps[e]);
          aggregate += round.per_endpoint_pps[e];
        }
        std::printf("  aggregate across %zu targets: %8.0f pl/s\n",
                    options.endpoints.size(), aggregate);
      }
    }

    if (!options.json_path.empty()) {
      std::ofstream os(options.json_path, std::ios::trunc);
      if (!os.is_open()) {
        std::cerr << "cannot write " << options.json_path << "\n";
        return 1;
      }
      // Headline numbers come from the last round (the sweep's final — and
      // typically largest — connection count); every round is in "sweep".
      const RoundResult& last = rounds.back();
      const double fill_pps =
          last.fill_seconds > 0 ? last.fill_placed / last.fill_seconds : 0.0;
      const auto round_json = [&os, &options](const RoundResult& round) {
        const double pps =
            round.churn_seconds > 0 ? round.churn_places / round.churn_seconds : 0.0;
        double aggregate = 0.0;
        for (const double target_pps : round.per_endpoint_pps) aggregate += target_pps;
        os << "{\"connections\": " << round.connections
           << ", \"churn_placements_per_sec\": " << pps
           << ", \"aggregate_placements_per_sec\": " << aggregate
           << ", \"churn_ops\": " << round.churn_places
           << ", \"retries\": " << round.retries
           << ", \"p50_us\": " << round.latency.quantile(0.50) / 1000.0
           << ", \"p99_us\": " << round.latency.quantile(0.99) / 1000.0
           << ", \"p999_us\": " << round.latency.quantile(0.999) / 1000.0
           << ", \"per_connection_placements_per_sec\": [";
        for (std::size_t i = 0; i < round.per_conn_pps.size(); ++i) {
          os << (i > 0 ? ", " : "") << round.per_conn_pps[i];
        }
        os << "], \"endpoints\": [";
        for (std::size_t e = 0; e < round.per_endpoint_pps.size(); ++e) {
          os << (e > 0 ? ", " : "") << "{\"endpoint\": "
             << json_quote(options.endpoints[e].spec)
             << ", \"churn_placements_per_sec\": " << round.per_endpoint_pps[e] << "}";
        }
        os << "]}";
      };
      os << "{\n  \"benchmark\": \"service_throughput\",\n  \"catalog\": \"ec2_sim\",\n"
         << "  \"protocol\": \"" << (options.binary ? "binary" : "json") << "\",\n"
         << "  \"churn_ops\": " << last.churn_places << ",\n  \"connections\": "
         << last.connections << ",\n  \"pipeline\": " << options.pipeline << ",\n"
         << "  \"sweep\": [\n";
      for (std::size_t i = 0; i < rounds.size(); ++i) {
        os << "    ";
        round_json(rounds[i]);
        os << (i + 1 < rounds.size() ? ",\n" : "\n");
      }
      os << "  ],\n"
         << "  \"fleets\": [\n    {\"pms\": " << options.fill_pms
         << ", \"used_pms\": " << last.used_pms << ",\n      \"service\": {"
         << "\"fill_placements_per_sec\": " << fill_pps
         << ", \"fill_placements\": " << last.fill_placed
         << ", \"churn_placements_per_sec\": "
         << (last.churn_seconds > 0 ? last.churn_places / last.churn_seconds : 0.0)
         << ", \"churn_ops\": " << last.churn_places << ", \"retries\": " << last.retries
         << ", \"p50_us\": " << last.latency.quantile(0.50) / 1000.0
         << ", \"p99_us\": " << last.latency.quantile(0.99) / 1000.0
         << ", \"p999_us\": " << last.latency.quantile(0.999) / 1000.0
         << ",\n      \"latency_histogram_us\": [";
      // Nonzero buckets as [upper_bound_us, count] pairs, the same log2
      // bucketing the daemon's own histograms use.
      bool first = true;
      for (std::size_t i = 0; i < last.latency.counts.size(); ++i) {
        if (last.latency.counts[i] == 0) continue;
        os << (first ? "" : ", ") << "[" << obs::Histogram::bucket_hi(i) / 1000.0 << ", "
           << last.latency.counts[i] << "]";
        first = false;
      }
      os << "]}}\n  ]\n}\n";
      std::cout << "wrote " << options.json_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "prvm_loadgen: " << e.what() << "\n";
    return 1;
  }
}
