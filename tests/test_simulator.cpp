#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "energy/power_model.hpp"
#include "placement/algorithm_factory.hpp"

namespace prvm {
namespace {

TraceSet constant_traces(double value, std::size_t epochs) {
  return TraceSet({UtilizationTrace(std::vector<double>(epochs, value))});
}

SimulationOptions short_options(std::size_t epochs) {
  SimulationOptions options;
  options.epochs = epochs;
  options.record_events = true;
  return options;
}

TEST(Simulator, QuietTracesProduceNoMigrations) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(10, 0));
  std::vector<Vm> vms;
  for (VmId id = 0; id < 12; ++id) vms.push_back(Vm{id, id % 2});
  std::vector<std::size_t> binding(vms.size(), 0);
  CloudSimulation sim(std::move(dc), vms, binding, constant_traces(0.2, 12),
                      short_options(12));
  FirstFit algorithm;
  MinimumMigrationTimePolicy policy;
  const SimMetrics metrics = sim.run(algorithm, policy);
  EXPECT_EQ(metrics.vm_migrations, 0u);
  EXPECT_EQ(metrics.overload_events, 0u);
  EXPECT_EQ(metrics.rejected_vms, 0u);
  EXPECT_DOUBLE_EQ(metrics.slo_violation_percent, 0.0);
  EXPECT_GT(metrics.energy_kwh, 0.0);
  EXPECT_EQ(metrics.pms_used_initial, metrics.pms_used_max);
  EXPECT_DOUBLE_EQ(metrics.simulated_seconds, 12 * 300.0);
}

TEST(Simulator, HotTracesTriggerOverloadAndMigration) {
  const Catalog catalog = geni_catalog();
  // One instance fully packed (4x 4-core jobs at trace 1.0 saturates it);
  // spare instances exist to migrate to.
  Datacenter dc(catalog, std::vector<std::size_t>(6, 0));
  std::vector<Vm> vms;
  for (VmId id = 0; id < 8; ++id) vms.push_back(Vm{id, 1});
  std::vector<std::size_t> binding(vms.size(), 0);
  CloudSimulation sim(std::move(dc), vms, binding, constant_traces(1.0, 6),
                      short_options(6));
  FirstFit algorithm;
  MinimumMigrationTimePolicy policy;
  const SimMetrics metrics = sim.run(algorithm, policy);
  EXPECT_GT(metrics.overload_events, 0u);
  EXPECT_GT(metrics.vm_migrations, 0u);
  EXPECT_GT(metrics.slo_violation_percent, 0.0);
  EXPECT_GT(sim.events().count(SimEventType::kVmMigrated), 0u);
}

TEST(Simulator, FailedMigrationRestoresVmOnSource) {
  const Catalog catalog = geni_catalog();
  // A single instance: nowhere to migrate.
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  std::vector<Vm> vms;
  for (VmId id = 0; id < 4; ++id) vms.push_back(Vm{id, 1});
  std::vector<std::size_t> binding(vms.size(), 0);
  CloudSimulation sim(std::move(dc), vms, binding, constant_traces(1.0, 3),
                      short_options(3));
  FirstFit algorithm;
  MinimumMigrationTimePolicy policy;
  const SimMetrics metrics = sim.run(algorithm, policy);
  EXPECT_EQ(metrics.vm_migrations, 0u);
  EXPECT_GT(metrics.failed_migrations, 0u);
  // All four jobs still placed.
  EXPECT_EQ(sim.datacenter().vm_count(), 4u);
}

TEST(Simulator, RejectsVmsWhenFleetFull) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  std::vector<Vm> vms;
  for (VmId id = 0; id < 6; ++id) vms.push_back(Vm{id, 1});  // 6x4 > 16 slots
  std::vector<std::size_t> binding(vms.size(), 0);
  CloudSimulation sim(std::move(dc), vms, binding, constant_traces(0.1, 2),
                      short_options(2));
  FirstFit algorithm;
  MinimumMigrationTimePolicy policy;
  const SimMetrics metrics = sim.run(algorithm, policy);
  EXPECT_EQ(metrics.rejected_vms, 2u);
  EXPECT_EQ(sim.events().count(SimEventType::kVmRejected), 2u);
}

TEST(Simulator, EnergyMatchesHandComputationForOnePm) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  // One 4-core job at a constant 50 % trace: PM utilization = 4*0.5/16.
  std::vector<Vm> vms = {{0, 1}};
  std::vector<std::size_t> binding = {0};
  SimulationOptions options = short_options(10);
  options.cpu_model = CpuDemandModel::kBurst;
  options.burst_factor = 1.0;  // burst cap = reservation = 1 slot
  CloudSimulation sim(std::move(dc), vms, binding, constant_traces(0.5, 10), options);
  FirstFit algorithm;
  MinimumMigrationTimePolicy policy;
  const SimMetrics metrics = sim.run(algorithm, policy);
  const double util = 4.0 * 0.5 * 1.0 / 16.0;
  const double expected =
      10 * watts_to_kwh(power_model_for("E5-2670").power_watts(util), 300.0);
  EXPECT_NEAR(metrics.energy_kwh, expected, 1e-9);
}

TEST(Simulator, ReservedModelUsesVcpuReservation) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  std::vector<Vm> vms = {{0, 1}};
  std::vector<std::size_t> binding = {0};
  SimulationOptions options = short_options(2);
  options.cpu_model = CpuDemandModel::kReserved;
  CloudSimulation sim(std::move(dc), vms, binding, constant_traces(1.0, 2), options);
  FirstFit algorithm;
  MinimumMigrationTimePolicy policy;
  sim.run(algorithm, policy);
  // 4 vCPUs x 1.0 GHz reservation on a 16 GHz instance.
  EXPECT_NEAR(sim.pm_cpu_utilization(0), 4.0 / 16.0, 1e-12);
}

TEST(Simulator, BurstModelCapsAtPhysicalCore) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  std::vector<Vm> vms = {{0, 1}};
  std::vector<std::size_t> binding = {0};
  SimulationOptions options = short_options(2);
  options.cpu_model = CpuDemandModel::kBurst;
  options.burst_factor = 100.0;  // capped by core_ghz
  CloudSimulation sim(std::move(dc), vms, binding, constant_traces(1.0, 2), options);
  FirstFit algorithm;
  MinimumMigrationTimePolicy policy;
  sim.run(algorithm, policy);
  EXPECT_NEAR(sim.pm_cpu_utilization(0), 4.0 * 4.0 / 16.0, 1e-12);
}

TEST(Simulator, PerDimensionRuleCatchesHotCore) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(2, 0));
  const ProfileShape& shape = dc.catalog().shape(0);
  // Three 2-core jobs stacked pairwise on cores 0/1: core 0 gets 3 vCPUs.
  dc.place(0, Vm{0, 0}, DemandPlacement{{{0, 1}, {1, 1}}, Profile::from_levels(shape, {1, 1, 0, 0})});
  dc.place(0, Vm{1, 0}, DemandPlacement{{{0, 1}, {1, 1}}, Profile::from_levels(shape, {2, 2, 0, 0})});
  dc.place(0, Vm{2, 0}, DemandPlacement{{{0, 1}, {1, 1}}, Profile::from_levels(shape, {3, 3, 0, 0})});
  std::vector<Vm> vms = {{0, 0}, {1, 0}, {2, 0}};
  std::vector<std::size_t> binding(3, 0);
  SimulationOptions options = short_options(1);
  options.burst_factor = 2.0;
  // Jobs at trace 0.7: per-core utilization = 3 * 0.7 * 2 / 4 = 1.05 > 0.9,
  // while whole-PM utilization = 6 * 0.7 * 2 / 16 = 0.525 < 0.9.
  CloudSimulation sim(std::move(dc), vms, binding, constant_traces(0.7, 1), options);
  EXPECT_LT(sim.pm_cpu_utilization(0), 0.9);
  EXPECT_GT(sim.pm_hottest_utilization(0), 0.9);
  const auto cores = sim.pm_core_utilizations(0);
  ASSERT_EQ(cores.size(), 4u);
  EXPECT_NEAR(cores[0], 1.05, 1e-9);
  EXPECT_NEAR(cores[2], 0.0, 1e-9);
}

TEST(Simulator, TotalRuleIgnoresHotCore) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  const ProfileShape& shape = dc.catalog().shape(0);
  dc.place(0, Vm{0, 0}, DemandPlacement{{{0, 1}, {1, 1}}, Profile::from_levels(shape, {1, 1, 0, 0})});
  dc.place(0, Vm{1, 0}, DemandPlacement{{{0, 1}, {1, 1}}, Profile::from_levels(shape, {2, 2, 0, 0})});
  dc.place(0, Vm{2, 0}, DemandPlacement{{{0, 1}, {1, 1}}, Profile::from_levels(shape, {3, 3, 0, 0})});
  std::vector<Vm> vms = {{0, 0}, {1, 0}, {2, 0}};
  std::vector<std::size_t> binding(3, 0);
  SimulationOptions options = short_options(1);
  options.overload_rule = OverloadRule::kPmTotal;
  CloudSimulation sim(std::move(dc), vms, binding, constant_traces(0.7, 1), options);
  EXPECT_LT(sim.pm_hottest_utilization(0), 0.9);
}

TEST(Simulator, SingleUseGuard) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  std::vector<Vm> vms = {{0, 0}};
  std::vector<std::size_t> binding = {0};
  CloudSimulation sim(std::move(dc), vms, binding, constant_traces(0.1, 1),
                      short_options(1));
  FirstFit algorithm;
  MinimumMigrationTimePolicy policy;
  sim.run(algorithm, policy);
  EXPECT_THROW(sim.run(algorithm, policy), std::invalid_argument);
}

TEST(Simulator, ConstructorValidation) {
  const Catalog catalog = geni_catalog();
  std::vector<Vm> vms = {{0, 0}};
  EXPECT_THROW(CloudSimulation(Datacenter(catalog, {0}), vms, {},  // missing binding
                               constant_traces(0.1, 1), short_options(1)),
               std::invalid_argument);
  EXPECT_THROW(CloudSimulation(Datacenter(catalog, {0}), vms, {5},  // bad index
                               constant_traces(0.1, 1), short_options(1)),
               std::invalid_argument);
  std::vector<Vm> duplicate = {{0, 0}, {0, 1}};
  EXPECT_THROW(CloudSimulation(Datacenter(catalog, {0}), duplicate, {0, 0},
                               constant_traces(0.1, 1), short_options(1)),
               std::invalid_argument);
}

TEST(Simulator, WorkloadHelpers) {
  const Catalog catalog = ec2_catalog();
  Rng rng(9);
  const auto vms = random_vm_requests(rng, catalog, 100);
  EXPECT_EQ(vms.size(), 100u);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    EXPECT_EQ(vms[i].id, i);
    EXPECT_LT(vms[i].type_index, catalog.vm_types().size());
  }
  const auto mix = default_vm_mix(catalog);
  ASSERT_EQ(mix.size(), 6u);
  EXPECT_DOUBLE_EQ(mix[4], 0.35);  // c3.large weighted up
  const auto weighted = weighted_vm_requests(rng, catalog, 1000, mix);
  std::size_t c3 = 0;
  for (const Vm& vm : weighted) {
    if (vm.type_index >= 4) ++c3;
  }
  EXPECT_GT(c3, 550u);  // ~70 % expected
  const auto fleet = mixed_pm_fleet(catalog, 5);
  EXPECT_EQ(fleet, (std::vector<std::size_t>{0, 1, 0, 1, 0}));
  const auto binding = random_trace_binding(rng, 10, 3);
  EXPECT_EQ(binding.size(), 10u);
  for (auto b : binding) EXPECT_LT(b, 3u);
}

TEST(SimEvents, CountersWorkWithoutRecording) {
  EventLog log(false);
  log.record({0, SimEventType::kVmMigrated, 1, 2, 3});
  log.record({0, SimEventType::kVmMigrated, 1, 2, 3});
  EXPECT_EQ(log.count(SimEventType::kVmMigrated), 2u);
  EXPECT_TRUE(log.events().empty());
  EventLog recording(true);
  recording.record({5, SimEventType::kPmOverloaded, 0, 7, 0});
  ASSERT_EQ(recording.events().size(), 1u);
  EXPECT_EQ(recording.events()[0].epoch, 5u);
  EXPECT_NE(recording.events()[0].describe().find("pm-overloaded"), std::string::npos);
}

}  // namespace
}  // namespace prvm
