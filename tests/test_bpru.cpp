#include "core/bpru.hpp"

#include <gtest/gtest.h>

namespace prvm {
namespace {

ProfileGraph paper_graph() {
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1, 1}}},
                                          QuantizedDemand{{{1, 1, 1, 1}}}};
  return ProfileGraph(std::move(shape), std::move(demands));
}

TEST(Bpru, InUnitIntervalAndAboveOwnUtilization) {
  const ProfileGraph g = paper_graph();
  const auto bpru = compute_bpru(g);
  ASSERT_EQ(bpru.size(), g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_GE(bpru[u], g.utilization(u) - 1e-12) << g.profile_of(u).describe();
    EXPECT_LE(bpru[u], 1.0 + 1e-12);
  }
}

TEST(Bpru, SinkBpruIsOwnUtilization) {
  const ProfileGraph g = paper_graph();
  const auto bpru = compute_bpru(g);
  for (NodeId s : g.sink_nodes()) {
    EXPECT_DOUBLE_EQ(bpru[s], g.utilization(s)) << g.profile_of(s).describe();
  }
}

TEST(Bpru, NodesOnAPathToBestHaveBpruOne) {
  const ProfileGraph g = paper_graph();
  const auto bpru = compute_bpru(g);
  const ProfileShape& shape = g.shape();
  // [4,4,2,2] -> [4,4,3,3] -> best: both discount-free.
  for (auto levels : {std::vector<int>{4, 4, 2, 2}, {4, 4, 3, 3}, {0, 0, 0, 0}}) {
    const auto node = g.find_node(Profile::from_levels(shape, levels).pack(shape));
    ASSERT_TRUE(node.has_value());
    EXPECT_DOUBLE_EQ(bpru[*node], 1.0);
  }
}

TEST(Bpru, DeadEndProfilesAreDiscounted) {
  const ProfileGraph g = paper_graph();
  const auto bpru = compute_bpru(g);
  const ProfileShape& shape = g.shape();
  // [4,4,4,0] cannot accept any VM (the [1,1] needs two non-full dims; only
  // one dim is free): a sink at utilization 12/16.
  const auto node = g.find_node(Profile::from_levels(shape, {4, 4, 4, 0}).pack(shape));
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(g.graph().out_degree(*node), 0u);
  EXPECT_DOUBLE_EQ(bpru[*node], 0.75);
}

TEST(Bpru, PropagatesMaxOverSuccessors) {
  const ProfileGraph g = paper_graph();
  const auto bpru = compute_bpru(g);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto succ = g.graph().successors(u);
    if (succ.empty()) continue;
    double expected = 0.0;
    for (NodeId v : succ) expected = std::max(expected, bpru[v]);
    EXPECT_DOUBLE_EQ(bpru[u], expected);
  }
}

TEST(Bpru, HandcraftedDeadEndGraph) {
  // 1 dim, capacity 4, only a 3-unit VM: 0 -> 3 (sink, util 0.75); best
  // never reachable, every BPRU is 0.75.
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 1, 4}});
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{3}}}};
  const ProfileGraph g(shape, demands);
  EXPECT_EQ(g.node_count(), 2u);
  const auto bpru = compute_bpru(g);
  EXPECT_DOUBLE_EQ(bpru[0], 0.75);
  EXPECT_DOUBLE_EQ(bpru[1], 0.75);
}

}  // namespace
}  // namespace prvm
