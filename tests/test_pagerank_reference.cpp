// Cross-validation of the PageRank solver against an independent dense
// matrix implementation on random graphs, and structural properties of the
// score pipeline on random profile graphs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "pagerank/pagerank.hpp"

namespace prvm {
namespace {

// Dense reference: iterates x' = normalize(base + d * A^T x) with
// A[u][v] = 1/outdeg(u) for each edge u->v — the same fixed point,
// computed with none of the production code's data structures.
std::vector<double> dense_pagerank(const std::vector<std::vector<int>>& adjacency, double d,
                                   const std::vector<double>* teleport) {
  const std::size_t n = adjacency.size();
  std::vector<double> base(n, (1.0 - d) / static_cast<double>(n));
  if (teleport != nullptr) {
    double total = 0.0;
    for (double w : *teleport) total += w;
    for (std::size_t u = 0; u < n; ++u) base[u] = (1.0 - d) * (*teleport)[u] / total;
  }
  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<double> next = base;
    for (std::size_t u = 0; u < n; ++u) {
      if (adjacency[u].empty()) continue;
      const double share = d * x[u] / static_cast<double>(adjacency[u].size());
      for (int v : adjacency[u]) next[static_cast<std::size_t>(v)] += share;
    }
    double sum = 0.0;
    for (double v : next) sum += v;
    for (double& v : next) v /= sum;
    double delta = 0.0;
    for (std::size_t u = 0; u < n; ++u) delta = std::max(delta, std::abs(next[u] - x[u]));
    x = std::move(next);
    if (delta < 1e-14) break;
  }
  return x;
}

TEST(PageRankReference, MatchesDenseSolverOnRandomGraphs) {
  Rng rng(20240705);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 30));
    std::vector<std::vector<int>> adjacency(n);
    Digraph graph(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u != v && rng.chance(0.2)) {
          adjacency[u].push_back(static_cast<int>(v));
          graph.add_edge(u, v);
        }
      }
    }
    PageRankOptions options;
    options.epsilon = 1e-14;
    options.max_iterations = 20000;
    const auto result = compute_pagerank(graph, options);
    const auto reference = dense_pagerank(adjacency, options.damping, nullptr);
    ASSERT_TRUE(result.converged) << "trial " << trial;
    for (std::size_t u = 0; u < n; ++u) {
      EXPECT_NEAR(result.scores[u], reference[u], 1e-9)
          << "trial " << trial << " node " << u;
    }
  }
}

TEST(PageRankReference, MatchesDenseSolverWithTeleport) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 20));
    std::vector<std::vector<int>> adjacency(n);
    Digraph graph(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u != v && rng.chance(0.25)) {
          adjacency[u].push_back(static_cast<int>(v));
          graph.add_edge(u, v);
        }
      }
    }
    std::vector<double> teleport(n, 0.0);
    teleport[rng.uniform_index(n)] = 1.0;
    teleport[rng.uniform_index(n)] += 2.0;

    PageRankOptions options;
    options.epsilon = 1e-14;
    options.max_iterations = 20000;
    const auto result = compute_pagerank(graph, options, teleport);
    const auto reference = dense_pagerank(adjacency, options.damping, &teleport);
    for (std::size_t u = 0; u < n; ++u) {
      EXPECT_NEAR(result.scores[u], reference[u], 1e-9)
          << "trial " << trial << " node " << u;
    }
  }
}

TEST(PageRankReference, DampingSweepKeepsDistribution) {
  Digraph graph(6);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  graph.add_edge(0, 4);
  graph.add_edge(4, 5);
  for (double d : {0.0, 0.3, 0.5, 0.85, 0.99}) {
    PageRankOptions options;
    options.damping = d;
    const auto result = compute_pagerank(graph, options);
    double sum = 0.0;
    for (double s : result.scores) {
      EXPECT_GE(s, 0.0);
      sum += s;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "d=" << d;
  }
}

}  // namespace
}  // namespace prvm
