#include "cluster/catalog.hpp"

#include <gtest/gtest.h>

#include "core/catalog_graphs.hpp"

namespace prvm {
namespace {

TEST(VmCatalog, TableOneValues) {
  const auto vms = ec2_vm_types();
  ASSERT_EQ(vms.size(), 6u);
  EXPECT_EQ(vms[0].name, "m3.medium");
  EXPECT_EQ(vms[0].vcpus, 1);
  EXPECT_DOUBLE_EQ(vms[0].vcpu_ghz, 0.6);
  EXPECT_DOUBLE_EQ(vms[0].memory_gib, 3.75);
  EXPECT_EQ(vms[0].vdisks, 1);
  EXPECT_DOUBLE_EQ(vms[0].vdisk_gb, 4.0);

  EXPECT_EQ(vms[3].name, "m3.2xlarge");
  EXPECT_EQ(vms[3].vcpus, 8);
  EXPECT_DOUBLE_EQ(vms[3].memory_gib, 30.0);
  EXPECT_DOUBLE_EQ(vms[3].total_cpu_ghz(), 4.8);
  EXPECT_DOUBLE_EQ(vms[3].total_disk_gb(), 160.0);

  EXPECT_EQ(vms[5].name, "c3.xlarge");
  EXPECT_DOUBLE_EQ(vms[5].vcpu_ghz, 0.7);
}

TEST(PmCatalog, TableTwoValues) {
  const auto pms = ec2_pm_types();
  ASSERT_EQ(pms.size(), 2u);
  EXPECT_EQ(pms[0].name, "M3");
  EXPECT_EQ(pms[0].cores, 8);
  EXPECT_DOUBLE_EQ(pms[0].core_ghz, 2.6);
  EXPECT_DOUBLE_EQ(pms[0].memory_gib, 64.0);
  EXPECT_EQ(pms[0].disks, 4);
  EXPECT_DOUBLE_EQ(pms[0].disk_gb, 250.0);
  EXPECT_EQ(pms[0].cpu_model, "E5-2670");
  EXPECT_EQ(pms[1].name, "C3");
  EXPECT_DOUBLE_EQ(pms[1].core_ghz, 2.8);
  EXPECT_EQ(pms[1].cpu_model, "E5-2680");
  // Documented deviation: C3 memory corrected to a host-class value.
  EXPECT_DOUBLE_EQ(pms[1].memory_gib, 60.0);
  // The literal table is preserved separately.
  EXPECT_DOUBLE_EQ(ec2_pm_types_as_printed()[1].memory_gib, 7.5);
}

TEST(PmCatalog, ShapeFromType) {
  QuantizationConfig q;
  const ProfileShape shape = ec2_pm_types()[0].make_shape(q);
  ASSERT_EQ(shape.group_count(), 3u);
  EXPECT_EQ(shape.groups()[0].count, 8);
  EXPECT_EQ(shape.groups()[0].capacity, q.cpu_levels);
  EXPECT_EQ(shape.groups()[1].count, 1);
  EXPECT_EQ(shape.groups()[1].capacity, q.mem_levels);
  EXPECT_EQ(shape.groups()[2].count, 4);
  EXPECT_EQ(shape.groups()[2].capacity, q.disk_levels);
}

TEST(PmCatalog, QuantizeEveryVmTypeOnM3) {
  QuantizationConfig q;
  const PmType m3 = ec2_pm_types()[0];
  const auto vms = ec2_vm_types();
  // m3.medium: 1 vCPU@1 level, mem 1 level, 1 disk@1 level.
  auto d = m3.quantize(vms[0], q);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->group_items[0], (std::vector<int>{1}));
  EXPECT_EQ(d->group_items[1], (std::vector<int>{1}));
  EXPECT_EQ(d->group_items[2], (std::vector<int>{1}));
  // m3.2xlarge: 8 vCPUs, mem 8 levels, 2 disks of 80 GB -> 2 levels each.
  d = m3.quantize(vms[3], q);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->group_items[0].size(), 8u);
  EXPECT_EQ(d->group_items[1], (std::vector<int>{8}));
  EXPECT_EQ(d->group_items[2], (std::vector<int>{2, 2}));
  // c3.large: 0.7 GHz vCPU costs 2 levels on a 0.65 GHz/level M3 core.
  d = m3.quantize(vms[4], q);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->group_items[0], (std::vector<int>{2, 2}));
}

TEST(PmCatalog, QuantizeRejectsImpossibleFits) {
  QuantizationConfig q;
  PmType tiny{"tiny", 2, 1.0, 4.0, 1, 10.0, "E5-2670"};
  VmType too_many_vcpus{"x", 4, 0.5, 1.0, 0, 0.0};
  EXPECT_FALSE(tiny.quantize(too_many_vcpus, q).has_value());
  VmType too_much_mem{"x", 1, 0.5, 8.0, 0, 0.0};
  EXPECT_FALSE(tiny.quantize(too_much_mem, q).has_value());
  VmType too_many_disks{"x", 1, 0.5, 1.0, 2, 1.0};
  EXPECT_FALSE(tiny.quantize(too_many_disks, q).has_value());
  VmType vcpu_too_big{"x", 1, 1.5, 1.0, 0, 0.0};
  EXPECT_FALSE(tiny.quantize(vcpu_too_big, q).has_value());
  VmType fits{"x", 2, 0.5, 4.0, 1, 10.0};
  EXPECT_TRUE(tiny.quantize(fits, q).has_value());
}

TEST(PmCatalog, OversubscriptionChangesCpuQuantization) {
  QuantizationConfig q;  // 4 CPU levels
  PmType m3 = ec2_pm_types()[0];
  m3.cpu_alloc_factor = 2.0;
  EXPECT_DOUBLE_EQ(m3.alloc_core_ghz(), 5.2);
  // At 4 levels over 5.2 GHz (1.3/level), a 0.7 GHz vCPU costs 1 level.
  const auto d = m3.quantize(ec2_vm_types()[4], q);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->group_items[0], (std::vector<int>{1, 1}));
}

TEST(Catalog, PrecomputesDemandsAndFittingSets) {
  const Catalog catalog = ec2_catalog();
  ASSERT_EQ(catalog.pm_types().size(), 2u);
  ASSERT_EQ(catalog.vm_types().size(), 6u);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto& fitting = catalog.fitting_demands(p);
    EXPECT_EQ(fitting.demands.size(), fitting.vm_type_of.size());
    for (std::size_t i = 0; i < fitting.demands.size(); ++i) {
      const auto& direct = catalog.demand(p, fitting.vm_type_of[i]);
      ASSERT_TRUE(direct.has_value());
      EXPECT_EQ(direct->group_items, fitting.demands[i].group_items);
    }
  }
  // With the corrected C3 memory all six VM types fit both PM types.
  EXPECT_EQ(catalog.fitting_demands(0).demands.size(), 6u);
  EXPECT_EQ(catalog.fitting_demands(1).demands.size(), 6u);
}

TEST(Catalog, AsPrintedC3RejectsLargeVms) {
  const Catalog catalog(ec2_vm_types(), ec2_pm_types_as_printed());
  // C3 with 7.5 GiB cannot host m3.xlarge (15) or m3.2xlarge (30).
  EXPECT_FALSE(catalog.demand(1, 2).has_value());
  EXPECT_FALSE(catalog.demand(1, 3).has_value());
  EXPECT_TRUE(catalog.demand(1, 0).has_value());
}

TEST(Catalog, RejectsVmThatFitsNothing) {
  std::vector<VmType> vms = {{"giant", 64, 1.0, 1024.0, 0, 0.0}};
  EXPECT_THROW(Catalog(vms, ec2_pm_types()), std::invalid_argument);
}

TEST(Catalog, GeniSetup) {
  const Catalog catalog = geni_catalog();
  ASSERT_EQ(catalog.pm_types().size(), 1u);
  ASSERT_EQ(catalog.vm_types().size(), 2u);
  const ProfileShape& shape = catalog.shape(0);
  // 4 cores, 4 vCPU slots each, CPU only (paper §VI-A).
  EXPECT_EQ(shape.group_count(), 1u);
  EXPECT_EQ(shape.groups()[0].count, 4);
  EXPECT_EQ(shape.groups()[0].capacity, 4);
  const auto d2 = catalog.demand(0, 0);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->group_items[0], (std::vector<int>{1, 1}));
  const auto d4 = catalog.demand(0, 1);
  ASSERT_TRUE(d4.has_value());
  EXPECT_EQ(d4->group_items[0], (std::vector<int>{1, 1, 1, 1}));
}

TEST(Catalog, Ec2SimCatalogScalesLevelsWithFactor) {
  const Catalog base = ec2_sim_catalog(1.0);
  EXPECT_EQ(base.quantization().cpu_levels, 4);
  const Catalog over = ec2_sim_catalog(1.5);
  EXPECT_EQ(over.quantization().cpu_levels, 6);
  // Level size stays 0.65 GHz on M3 either way: a 0.6 GHz vCPU costs 1.
  for (const Catalog* c : {&base, &over}) {
    const auto d = c->demand(0, 0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->group_items[0], (std::vector<int>{1}));
  }
  EXPECT_THROW(ec2_sim_catalog(0.5), std::invalid_argument);
}

TEST(CatalogGraphs, BuildsGeniTables) {
  const Catalog catalog = geni_catalog();
  const ScoreTableSet tables = build_score_tables(catalog, {}, std::nullopt);
  ASSERT_EQ(tables.pm_type_count(), 1u);
  EXPECT_EQ(tables.table(0).demand_count(), 2u);
  EXPECT_TRUE(tables.demand_slot(0, 0).has_value());
  EXPECT_TRUE(tables.demand_slot(0, 1).has_value());
  // The empty-instance profile is scored.
  const ProfileKey zero = Profile::zero(catalog.shape(0)).pack(catalog.shape(0));
  EXPECT_TRUE(tables.table(0).find(zero).has_value());
}

TEST(CatalogGraphs, CacheRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "prvm-cache-test";
  std::filesystem::remove_all(dir);
  const Catalog catalog = geni_catalog();
  const ScoreTableSet fresh = build_score_tables(catalog, {}, dir);
  ASSERT_FALSE(std::filesystem::is_empty(dir));
  const ScoreTableSet cached = build_score_tables(catalog, {}, dir);
  EXPECT_EQ(cached.table(0).size(), fresh.table(0).size());
  EXPECT_EQ(cached.table(0).digest_string(), fresh.table(0).digest_string());
  std::filesystem::remove_all(dir);
}

TEST(Describe, HumanReadable) {
  EXPECT_NE(ec2_vm_types()[0].describe().find("m3.medium"), std::string::npos);
  EXPECT_NE(ec2_pm_types()[0].describe().find("E5-2670"), std::string::npos);
}

}  // namespace
}  // namespace prvm
