// Steady-state allocation test for the indexed PageRankVM engine.
//
// Built as its own binary (prvm_alloc_tests): the global operator new/delete
// overrides below count every heap allocation in the process, which would
// perturb the main suite. The contract: once the engine is warm (scratch
// vectors sized, rep cache populated, need masks built, hash maps past their
// final rehash), a speculate() pick performs ZERO heap allocations — the
// whole hot path runs on engine-owned scratch and borrowed views.
#include <atomic>
#include <cstdlib>
#include <new>

static std::atomic<std::size_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#include "cluster/catalog.hpp"
#include "cluster/datacenter.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "placement/pagerank_vm.hpp"
#include "service/binary_protocol.hpp"
#include "service/protocol.hpp"

#include <gtest/gtest.h>

namespace prvm {
namespace {

TEST(EngineAlloc, WarmSpeculateIsAllocationFree) {
  const Catalog catalog = ec2_sim_catalog();
  const auto tables =
      std::make_shared<const ScoreTableSet>(build_score_tables(catalog, {}, std::nullopt));
  Datacenter dc(catalog, std::vector<std::size_t>(64, 0));
  PageRankVm engine(tables, {});

  // Load the fleet part-way so every speculate below lands on a used PM
  // (the activation fallback re-enumerates placements and may allocate).
  Rng rng(11);
  VmId next_id = 1;
  const std::size_t vm_types = catalog.vm_types().size();
  for (int i = 0; i < 160; ++i) {
    const Vm vm{next_id++, rng.uniform_index(vm_types)};
    if (!engine.place(dc, vm).has_value()) break;
  }
  ASSERT_GT(dc.used_count(), 0u);

  const PlacementConstraints constraints;
  PageRankVm::Speculation spec;
  // Warm-up pass: sizes the scratch vectors, fills the rep cache for every
  // (profile, VM type) the probe set touches, triggers the one spurious
  // FlatMap64 rehash try_emplace may perform at its load threshold, and
  // builds the need-mask matrix.
  std::size_t decided = 0;
  for (std::size_t v = 0; v < vm_types; ++v) {
    const Vm vm{next_id++, v};
    for (int rep = 0; rep < 2; ++rep) {
      if (engine.speculate(dc, vm, constraints, spec)) ++decided;
    }
  }
  ASSERT_GT(decided, 0u);

  // Measured pass: the exact same picks must not touch the heap.
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 50; ++round) {
    for (std::size_t v = 0; v < vm_types; ++v) {
      const Vm vm{next_id++, v};
      const bool ok = engine.speculate(dc, vm, constraints, spec);
      if (round == 0 && !ok) continue;
    }
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "speculate() allocated " << (after - before)
                           << " times across 50 warm rounds";
}

// The cell channel's submit path (cell_channel.cpp) encodes every request
// into one member buffer it clears and reuses — the fix this test pins
// down: a warm channel must encode without touching the heap at all on the
// binary protocol, and the reused JSON buffer must beat the old
// fresh-string-per-request encode_request() path. The channel itself is not
// constructed here (its promise queue allocates by design); the encode
// calls below are exactly the ones submit() makes.
TEST(ChannelEncodeAlloc, WarmReusedEncodeBufferDelta) {
  Request place;
  place.op = RequestOp::kPlace;
  place.vm_id = 123456;
  place.vm_type_index = 7;
  place.group = "web-tier";

  constexpr int kRounds = 1000;
  std::string reused;

  // Warm-up sizes the reused buffer once.
  encode_binary_request_into(place, reused);
  reused.clear();
  encode_binary_request_into(place, reused, /*type_slot=*/std::nullopt);

  // Binary encode into the warm buffer: zero heap traffic. This is the
  // whole point of the PRVB1 hot path — no std::to_string, no json_quote
  // temporaries, just byte appends into existing capacity.
  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < kRounds; ++i) {
    reused.clear();
    encode_binary_request_into(place, reused);
  }
  const std::size_t binary_allocs = g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(binary_allocs, 0u) << "warm binary encode allocated";

  // JSON into the same reused buffer: the std::to_string/json_quote
  // temporaries fit the small-string optimization at this request size, so
  // buffer reuse alone gets JSON to zero too — larger fields (long group
  // names, repl hex payloads) spill and allocate where binary still won't.
  reused.clear();
  encode_request_into(place, reused);
  before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < kRounds; ++i) {
    reused.clear();
    encode_request_into(place, reused);
  }
  const std::size_t json_reused_allocs =
      g_allocations.load(std::memory_order_relaxed) - before;

  // The old channel behavior: a fresh string per request on top of that.
  before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < kRounds; ++i) {
    const std::string line = encode_request(place);
    ASSERT_FALSE(line.empty());
  }
  const std::size_t json_fresh_allocs =
      g_allocations.load(std::memory_order_relaxed) - before;

  // Report the per-request deltas the buffer-reuse fix and the binary
  // codec buy (visible with --gtest_brief=0 and in CI logs).
  RecordProperty("binary_allocs_per_request", static_cast<int>(binary_allocs / kRounds));
  RecordProperty("json_reused_allocs_per_request",
                 static_cast<int>(json_reused_allocs / kRounds));
  RecordProperty("json_fresh_allocs_per_request",
                 static_cast<int>(json_fresh_allocs / kRounds));
  std::printf("[ alloc/req ] binary reused=%.2f  json reused=%.2f  json fresh=%.2f\n",
              static_cast<double>(binary_allocs) / kRounds,
              static_cast<double>(json_reused_allocs) / kRounds,
              static_cast<double>(json_fresh_allocs) / kRounds);

  // Reusing the buffer must strictly beat allocating a line per request;
  // binary must never be worse than JSON on the same reused buffer.
  EXPECT_LT(json_reused_allocs, json_fresh_allocs);
  EXPECT_LE(binary_allocs, json_reused_allocs);
}

}  // namespace
}  // namespace prvm
