#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/catalog_graphs.hpp"
#include "placement/algorithm_factory.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

std::shared_ptr<const ScoreTableSet> geni_tables() {
  static const auto tables =
      std::make_shared<const ScoreTableSet>(build_score_tables(geni_catalog(), {}, std::nullopt));
  return tables;
}

// Verifies the core §IV invariants on a datacenter after placement.
void expect_valid_state(const Datacenter& dc) {
  for (PmIndex i = 0; i < dc.pm_count(); ++i) {
    const auto& pm = dc.pm(i);
    const ProfileShape& shape = dc.shape_of(i);
    std::vector<int> replay(static_cast<std::size_t>(shape.total_dims()), 0);
    for (const auto& placed : pm.vms) {
      std::set<int> dims;
      for (auto [dim, amount] : placed.assignments) {
        EXPECT_TRUE(dims.insert(dim).second) << "anti-collocation violated";
        replay[static_cast<std::size_t>(dim)] += amount;
      }
    }
    for (int d = 0; d < shape.total_dims(); ++d) {
      EXPECT_EQ(replay[static_cast<std::size_t>(d)], pm.usage.level(d));
      EXPECT_LE(pm.usage.level(d), shape.dim_capacity(d));
    }
  }
}

class PlacementAlgorithmTest : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(PlacementAlgorithmTest, PlacesAllJobsOnAmpleFleet) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(40, 0));
  auto algorithm = make_algorithm(GetParam(), geni_tables());
  Rng rng(5);
  const auto vms = random_vm_requests(rng, catalog, 60);
  const auto rejected = algorithm->place_all(dc, vms);
  EXPECT_TRUE(rejected.empty());
  EXPECT_EQ(dc.vm_count(), 60u);
  expect_valid_state(dc);
  // Consolidation sanity: 60 jobs of <= 4 slots on 16-slot instances need
  // at most ~20 PMs for any sane algorithm.
  EXPECT_LE(dc.used_count(), 25u);
}

TEST_P(PlacementAlgorithmTest, DeterministicAcrossRuns) {
  const Catalog catalog = geni_catalog();
  Rng rng(17);
  const auto vms = random_vm_requests(rng, catalog, 40);
  std::vector<std::optional<PmIndex>> first;
  for (int run = 0; run < 2; ++run) {
    Datacenter dc(catalog, std::vector<std::size_t>(30, 0));
    auto algorithm = make_algorithm(GetParam(), geni_tables());
    std::vector<std::optional<PmIndex>> got;
    for (const Vm& vm : vms) got.push_back(algorithm->place(dc, vm));
    if (run == 0) {
      first = got;
    } else {
      EXPECT_EQ(first, got);
    }
  }
}

TEST_P(PlacementAlgorithmTest, RespectsExcludeConstraint) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(3, 0));
  auto algorithm = make_algorithm(GetParam(), geni_tables());
  PlacementConstraints constraints;
  constraints.exclude = 0;
  for (VmId id = 0; id < 6; ++id) {
    const auto pm = algorithm->place(dc, Vm{id, 0}, constraints);
    ASSERT_TRUE(pm.has_value());
    EXPECT_NE(*pm, 0u);
  }
}

TEST_P(PlacementAlgorithmTest, RespectsAllowVeto) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(4, 0));
  auto algorithm = make_algorithm(GetParam(), geni_tables());
  PlacementConstraints constraints;
  constraints.allow = [](const Datacenter&, PmIndex pm) { return pm >= 2; };
  for (VmId id = 0; id < 8; ++id) {
    const auto pm = algorithm->place(dc, Vm{id, 1}, constraints);
    ASSERT_TRUE(pm.has_value());
    EXPECT_GE(*pm, 2u);
  }
}

TEST_P(PlacementAlgorithmTest, ReturnsNulloptWhenNothingFits) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  auto algorithm = make_algorithm(GetParam(), geni_tables());
  // Fill the single instance: 4 four-core jobs = 16 slots.
  for (VmId id = 0; id < 4; ++id) {
    ASSERT_TRUE(algorithm->place(dc, Vm{id, 1}).has_value());
  }
  EXPECT_FALSE(algorithm->place(dc, Vm{99, 0}).has_value());
  expect_valid_state(dc);
}

TEST_P(PlacementAlgorithmTest, PrefersUsedPmsOverUnused) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(5, 0));
  auto algorithm = make_algorithm(GetParam(), geni_tables());
  ASSERT_TRUE(algorithm->place(dc, Vm{0, 0}).has_value());
  // A second small job must join the used PM, not open a new one.
  const auto pm = algorithm->place(dc, Vm{1, 0});
  ASSERT_TRUE(pm.has_value());
  EXPECT_EQ(dc.used_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PlacementAlgorithmTest,
                         ::testing::Values(AlgorithmKind::kPageRankVm,
                                           AlgorithmKind::kCompVm,
                                           AlgorithmKind::kFfdSum,
                                           AlgorithmKind::kFirstFit),
                         [](const auto& info) { return to_string(info.param); });

TEST(FirstFit, FillsInActivationOrder) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(3, 0));
  FirstFit ff;
  // 5 small jobs: the first PM holds up to 8 two-slot jobs, so all land on 0.
  for (VmId id = 0; id < 5; ++id) {
    EXPECT_EQ(ff.place(dc, Vm{id, 0}), std::optional<PmIndex>{0});
  }
}

TEST(FfdSum, SizeIsMonotoneInDemand) {
  const Catalog catalog = ec2_catalog();
  // m3.2xlarge dominates m3.medium in every dimension.
  EXPECT_GT(FfdSum::vm_size(catalog, 3), FfdSum::vm_size(catalog, 0));
  // All sizes positive.
  for (std::size_t t = 0; t < catalog.vm_types().size(); ++t) {
    EXPECT_GT(FfdSum::vm_size(catalog, t), 0.0);
  }
}

TEST(FfdSum, PlacesLargestFirst) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(4, 0));
  FfdSum ffd;
  // Mixed batch: the 4-core jobs must be placed before 2-core jobs, so
  // PM 0 accumulates 4-core jobs first.
  std::vector<Vm> vms = {{0, 0}, {1, 1}, {2, 0}, {3, 1}};
  const auto rejected = ffd.place_all(dc, vms);
  EXPECT_TRUE(rejected.empty());
  // The first VM on PM 0 must be one of the 4-core jobs (type 1).
  ASSERT_FALSE(dc.pm(0).vms.empty());
  EXPECT_EQ(dc.pm(0).vms.front().vm.type_index, 1u);
}

TEST(CompVm, PrefersComplementaryPm) {
  // Two used PMs: one with a hot core, one balanced. CompVM must choose the
  // placement minimizing resulting variance.
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(2, 0));
  const ProfileShape& shape = dc.shape_of(0);
  // PM0: concentrated [4,2,0,0]; PM1: balanced [2,2,1,1].
  dc.place(0, Vm{1, 1},
           DemandPlacement{{{0, 2}, {0 + 1, 2}, {2, 1}, {3, 1}},
                           Profile::from_levels(shape, {2, 2, 1, 1})});
  dc.place(1, Vm{2, 1},
           DemandPlacement{{{0, 4}, {1, 2}},
                           Profile::from_levels(shape, {4, 2, 0, 0})});
  CompVm comp;
  const auto pm = comp.place(dc, Vm{3, 0});
  ASSERT_TRUE(pm.has_value());
  EXPECT_EQ(*pm, 0u);  // the balanced PM yields lower post-placement variance
  expect_valid_state(dc);
}

TEST(PageRankVm, RequiresTables) {
  EXPECT_THROW(PageRankVm(nullptr), std::invalid_argument);
  EXPECT_THROW(make_algorithm(AlgorithmKind::kPageRankVm, nullptr), std::invalid_argument);
}

TEST(PageRankVm, PlacementScoreMatchesTable) {
  const Catalog catalog = geni_catalog();
  auto tables = geni_tables();
  Datacenter dc(catalog, std::vector<std::size_t>(2, 0));
  PageRankVm algorithm(tables);
  const auto score_empty = algorithm.placement_score(dc, 0, 0);
  ASSERT_TRUE(score_empty.has_value());
  const auto best = tables->table(0).best_after(dc.pm(0).canonical_key, 0);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(*score_empty, best->score);
}

TEST(PageRankVm, MaterializesTheWinningPermutation) {
  const Catalog catalog = geni_catalog();
  auto tables = geni_tables();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  PageRankVm algorithm(tables);
  ASSERT_TRUE(algorithm.place(dc, Vm{0, 0}).has_value());
  const ProfileShape& shape = dc.shape_of(0);
  const auto best_before = tables->table(0).best_after(
      Profile::zero(shape).pack(shape), *tables->demand_slot(0, 0));
  ASSERT_TRUE(best_before.has_value());
  EXPECT_EQ(dc.pm(0).canonical_key, best_before->successor);
}

TEST(PageRankVm, TwoChoiceStillPlaces) {
  const Catalog catalog = geni_catalog();
  PageRankVmOptions options;
  options.two_choice = true;
  options.seed = 3;
  PageRankVm algorithm(geni_tables(), options);
  Datacenter dc(catalog, std::vector<std::size_t>(20, 0));
  Rng rng(8);
  const auto vms = random_vm_requests(rng, catalog, 40);
  EXPECT_TRUE(algorithm.place_all(dc, vms).empty());
  expect_valid_state(dc);
}

TEST(AlgorithmFactory, KindsAndNames) {
  EXPECT_STREQ(to_string(AlgorithmKind::kPageRankVm), "PageRankVM");
  EXPECT_STREQ(to_string(AlgorithmKind::kFirstFit), "FF");
  EXPECT_STREQ(to_string(AlgorithmKind::kFfdSum), "FFDSum");
  EXPECT_STREQ(to_string(AlgorithmKind::kCompVm), "CompVM");
  EXPECT_EQ(all_algorithm_kinds().size(), 4u);
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    auto algorithm = make_algorithm(kind, geni_tables());
    EXPECT_EQ(algorithm->kind(), kind);
    EXPECT_EQ(algorithm->name(), to_string(kind));
  }
}

}  // namespace
}  // namespace prvm
