#include "common/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace prvm {
namespace {

TEST(WorkerPool, CoversEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, RespectsRangeOffsetAndGrain) {
  WorkerPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(40, 60, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/3);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 40 && i < 60) ? 1 : 0) << i;
  }
}

TEST(WorkerPool, EmptyRangeIsANoOp) {
  WorkerPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkerPool, MaxThreadsOneRunsSerially) {
  WorkerPool pool(8);
  // With participation capped at 1 thread the caller runs everything, so a
  // non-atomic counter must still end up exact.
  int count = 0;
  pool.parallel_for(0, 1000, [&](std::size_t) { ++count; }, 0, /*max_threads=*/1);
  EXPECT_EQ(count, 1000);
}

TEST(WorkerPool, PropagatesExceptions) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [&](std::size_t i) {
                                   if (i == 617) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool is reusable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkerPool, NestedCallsRunInline) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 8);
  pool.parallel_for(0, 64, [&](std::size_t outer) {
    // A nested parallel_for on a pool thread must not deadlock waiting for
    // the (busy) pool; it runs inline on the calling thread.
    pool.parallel_for(0, 8, [&](std::size_t inner) { hits[outer * 8 + inner].fetch_add(1); });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, BackToBackJobsStayConsistent) {
  WorkerPool& pool = WorkerPool::shared();
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(0, 1000, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
    EXPECT_EQ(sum.load(), 1000L * 999 / 2);
  }
}

}  // namespace
}  // namespace prvm
