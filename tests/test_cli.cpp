#include <gtest/gtest.h>

#include <sstream>

#include "cli/run.hpp"

namespace prvm {
namespace {

CliOptions parse(std::initializer_list<std::string_view> args) {
  std::vector<std::string_view> v(args);
  return parse_cli(v);
}

TEST(CliParse, Defaults) {
  const CliOptions options = parse({});
  EXPECT_EQ(options.mode, CliMode::kSimulate);
  EXPECT_FALSE(options.algorithm.has_value());
  EXPECT_EQ(options.vms, 500u);
  EXPECT_EQ(options.repetitions, 3u);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_EQ(options.epochs, 288u);
  EXPECT_EQ(options.trace, TraceKind::kPlanetLab);
  EXPECT_FALSE(options.csv);
  EXPECT_FALSE(options.help);
}

TEST(CliParse, AllFlags) {
  const CliOptions options =
      parse({"--mode", "lifecycle", "--algorithm", "BestFit", "--vms", "123", "--reps",
             "7", "--seed", "99", "--epochs", "10", "--trace", "google", "--csv"});
  EXPECT_EQ(options.mode, CliMode::kLifecycle);
  EXPECT_EQ(options.algorithm, AlgorithmKind::kBestFit);
  EXPECT_EQ(options.vms, 123u);
  EXPECT_EQ(options.repetitions, 7u);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.epochs, 10u);
  EXPECT_EQ(options.trace, TraceKind::kGoogleCluster);
  EXPECT_TRUE(options.csv);
}

TEST(CliParse, AllModesAndAlgorithms) {
  EXPECT_EQ(parse({"--mode", "place"}).mode, CliMode::kPlace);
  EXPECT_EQ(parse({"--mode", "geni"}).mode, CliMode::kGeni);
  EXPECT_EQ(parse({"--algorithm", "PageRankVM"}).algorithm, AlgorithmKind::kPageRankVm);
  EXPECT_EQ(parse({"--algorithm", "RoundRobin"}).algorithm, AlgorithmKind::kRoundRobin);
}

TEST(CliParse, HelpFlag) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"-h"}).help);
  EXPECT_NE(cli_help().find("--algorithm"), std::string::npos);
}

TEST(CliParse, RejectsBadInput) {
  EXPECT_THROW(parse({"--mode", "teleport"}), std::invalid_argument);
  EXPECT_THROW(parse({"--algorithm", "SkyNet"}), std::invalid_argument);
  EXPECT_THROW(parse({"--vms", "many"}), std::invalid_argument);
  EXPECT_THROW(parse({"--vms", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--vms"}), std::invalid_argument);  // missing value
  EXPECT_THROW(parse({"--trace", "netflix"}), std::invalid_argument);
  EXPECT_THROW(parse({"--frobnicate"}), std::invalid_argument);
  EXPECT_THROW(parse({"--reps", "-3"}), std::invalid_argument);
}

TEST(CliRun, HelpWritesUsage) {
  CliOptions options;
  options.help = true;
  std::ostringstream out;
  EXPECT_EQ(run_cli(options, out), 0);
  EXPECT_NE(out.str().find("usage: prvm"), std::string::npos);
}

TEST(CliRun, PlaceModeProducesTable) {
  CliOptions options = parse({"--mode", "place", "--vms", "60", "--seed", "7"});
  std::ostringstream out;
  EXPECT_EQ(run_cli(options, out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("PageRankVM"), std::string::npos);
  EXPECT_NE(text.find("PMs used"), std::string::npos);
}

TEST(CliRun, SingleAlgorithmCsv) {
  CliOptions options =
      parse({"--mode", "place", "--vms", "40", "--algorithm", "FF", "--csv"});
  std::ostringstream out;
  EXPECT_EQ(run_cli(options, out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("algorithm,PMs used,rejected"), std::string::npos);
  EXPECT_NE(text.find("FF,"), std::string::npos);
  EXPECT_EQ(text.find("PageRankVM"), std::string::npos);
  EXPECT_EQ(text.find('|'), std::string::npos);  // CSV, not a box table
}

TEST(CliRun, GeniModeRuns) {
  CliOptions options = parse({"--mode", "geni", "--vms", "20", "--reps", "1",
                              "--algorithm", "CompVM"});
  std::ostringstream out;
  EXPECT_EQ(run_cli(options, out), 0);
  EXPECT_NE(out.str().find("CompVM"), std::string::npos);
}

TEST(CliRun, LifecycleModeRuns) {
  CliOptions options = parse({"--mode", "lifecycle", "--vms", "50", "--reps", "1",
                              "--epochs", "30", "--algorithm", "BestFit"});
  std::ostringstream out;
  EXPECT_EQ(run_cli(options, out), 0);
  EXPECT_NE(out.str().find("BestFit"), std::string::npos);
  EXPECT_NE(out.str().find("fragmentation"), std::string::npos);
}

}  // namespace
}  // namespace prvm
