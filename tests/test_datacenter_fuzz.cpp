// Fuzz the Datacenter ledger against an independent reference model: a
// plain map of VM -> (pm, assignments) with usage recomputed from scratch
// after every operation. Random interleavings of place/remove/clear across
// heterogeneous fleets must keep both models identical.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "cluster/datacenter.hpp"
#include "common/rng.hpp"
#include "service/snapshot.hpp"

namespace prvm {
namespace {

struct ReferenceModel {
  // vm -> (pm, assignments)
  std::map<VmId, std::pair<PmIndex, std::vector<std::pair<int, int>>>> placed;

  std::vector<int> usage_of(const Datacenter& dc, PmIndex pm) const {
    const ProfileShape& shape = dc.shape_of(pm);
    std::vector<int> usage(static_cast<std::size_t>(shape.total_dims()), 0);
    for (const auto& [vm, entry] : placed) {
      if (entry.first != pm) continue;
      for (auto [dim, amount] : entry.second) {
        usage[static_cast<std::size_t>(dim)] += amount;
      }
    }
    return usage;
  }

  std::vector<PmIndex> used_set(std::size_t pm_count) const {
    std::vector<bool> used(pm_count, false);
    for (const auto& [vm, entry] : placed) used[entry.first] = true;
    std::vector<PmIndex> result;
    for (PmIndex i = 0; i < pm_count; ++i) {
      if (used[i]) result.push_back(i);
    }
    return result;
  }
};

void expect_models_agree(const Datacenter& dc, const ReferenceModel& reference) {
  ASSERT_EQ(dc.vm_count(), reference.placed.size());
  for (PmIndex i = 0; i < dc.pm_count(); ++i) {
    const auto expected = reference.usage_of(dc, i);
    const auto actual = dc.pm(i).usage.levels();
    ASSERT_EQ(std::vector<int>(actual.begin(), actual.end()), expected) << "pm " << i;
    ASSERT_EQ(dc.pm(i).vms.size(),
              static_cast<std::size_t>(std::count_if(
                  reference.placed.begin(), reference.placed.end(),
                  [&](const auto& e) { return e.second.first == i; })));
  }
  // used_pms as a set (order is activation order, the reference only has
  // the set).
  std::vector<PmIndex> used = dc.used_pms();
  std::sort(used.begin(), used.end());
  ASSERT_EQ(used, reference.used_set(dc.pm_count()));
  for (const auto& [vm, entry] : reference.placed) {
    ASSERT_EQ(dc.pm_of(vm), std::optional<PmIndex>{entry.first});
  }
}

TEST(DatacenterFuzz, RandomOperationSequencesMatchReference) {
  Rng rng(0xfeedface);
  for (int trial = 0; trial < 25; ++trial) {
    const Catalog catalog = ec2_catalog();
    const std::size_t pm_count = static_cast<std::size_t>(rng.uniform_int(2, 6));
    std::vector<std::size_t> fleet;
    for (std::size_t i = 0; i < pm_count; ++i) fleet.push_back(rng.uniform_index(2));
    Datacenter dc(catalog, fleet);
    ReferenceModel reference;
    VmId next_id = 0;

    for (int op = 0; op < 120; ++op) {
      const int dice = rng.uniform_int(0, 99);
      if (dice < 55) {
        // Place a random VM type on a random PM with a random permutation.
        const PmIndex pm = rng.uniform_index(pm_count);
        const std::size_t type = rng.uniform_index(catalog.vm_types().size());
        const auto options = dc.placements(pm, type);
        if (options.empty()) continue;
        const auto& placement = options[rng.uniform_index(options.size())];
        const Vm vm{next_id++, type};
        dc.place(pm, vm, placement);
        reference.placed[vm.id] = {pm, placement.assignments};
      } else if (dice < 95) {
        if (reference.placed.empty()) continue;
        // Remove a random placed VM.
        auto it = reference.placed.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.uniform_index(reference.placed.size())));
        dc.remove(it->first);
        reference.placed.erase(it);
      } else {
        dc.clear();
        reference.placed.clear();
      }
      expect_models_agree(dc, reference);
    }

    // Serialize/deserialize round trip at the end of every trial: the
    // restored ledger must be bit-identical under the full recovery
    // predicate (usage, activation sequences, bucket index, free-list) and
    // still agree with the reference model.
    std::stringstream blob;
    dc.serialize(blob);
    Datacenter restored = Datacenter::deserialize(catalog, blob);
    ASSERT_TRUE(datacenter_state_equal(dc, restored));
    restored.check_index_invariants();
    expect_models_agree(restored, reference);

    // The restored ledger is live, not a dead copy: mutating both in
    // lockstep keeps them identical (activation counters were restored too).
    if (!reference.placed.empty()) {
      const VmId victim = reference.placed.begin()->first;
      dc.remove(victim);
      restored.remove(victim);
      ASSERT_TRUE(datacenter_state_equal(dc, restored));
    }
  }
}

TEST(DatacenterFuzz, SerializeRejectsCorruptBlobs) {
  const Catalog catalog = ec2_catalog();
  Datacenter dc(catalog, {0, 1});
  const auto options = dc.placements(0, 0);
  ASSERT_FALSE(options.empty());
  dc.place(0, Vm{1, 0}, options.front());

  std::stringstream blob;
  dc.serialize(blob);
  const std::string bytes = blob.str();

  // Truncations and a flipped magic byte must throw, not crash or return a
  // half-restored ledger.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{4}, bytes.size() / 2}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(Datacenter::deserialize(catalog, truncated), std::exception) << cut;
  }
  std::string flipped = bytes;
  flipped[0] ^= 0x40;
  std::stringstream bad_magic(flipped);
  EXPECT_THROW(Datacenter::deserialize(catalog, bad_magic), std::exception);
}

TEST(DatacenterFuzz, FitsAgreesWithPlacementsEverywhere) {
  Rng rng(0xabcdef);
  const Catalog catalog = ec2_catalog();
  for (int trial = 0; trial < 10; ++trial) {
    Datacenter dc(catalog, {0, 1});
    VmId next_id = 0;
    for (int op = 0; op < 40; ++op) {
      const PmIndex pm = rng.uniform_index(2);
      const std::size_t type = rng.uniform_index(catalog.vm_types().size());
      const auto options = dc.placements(pm, type);
      ASSERT_EQ(dc.fits(pm, type), !options.empty());
      if (!options.empty() && rng.chance(0.7)) {
        dc.place(pm, Vm{next_id++, type}, options[rng.uniform_index(options.size())]);
      }
    }
  }
}

}  // namespace
}  // namespace prvm
