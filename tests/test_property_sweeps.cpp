// Parameterized property sweeps: the §IV constraints must hold for every
// algorithm, on every seed, across quantization granularities and VM mixes.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/catalog_graphs.hpp"
#include "placement/algorithm_factory.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

struct SweepCase {
  AlgorithmKind kind;
  std::uint64_t seed;
  int cpu_levels;
};

class PlacementPropertySweep
    : public ::testing::TestWithParam<std::tuple<AlgorithmKind, int, int>> {};

// Builds a randomized catalog whose VM types always fit the PM type.
Catalog sweep_catalog(int cpu_levels, Rng& rng) {
  QuantizationConfig q;
  q.cpu_levels = cpu_levels;
  q.mem_levels = 8;
  std::vector<PmType> pms = {{"node", 4, static_cast<double>(cpu_levels), 8.0, 0, 0.0,
                              "E5-2670"}};
  std::vector<VmType> vms;
  const int n_types = rng.uniform_int(2, 4);
  for (int t = 0; t < n_types; ++t) {
    const int vcpus = rng.uniform_int(1, 4);
    const int levels = rng.uniform_int(1, cpu_levels);
    const double mem = rng.uniform_int(1, 4);
    vms.push_back(VmType{"t" + std::to_string(t), vcpus, static_cast<double>(levels), mem,
                         0, 0.0});
  }
  return Catalog(std::move(vms), std::move(pms), q);
}

void expect_constraints_hold(const Datacenter& dc, std::size_t placed_vms) {
  std::size_t total_placed = 0;
  for (PmIndex i = 0; i < dc.pm_count(); ++i) {
    const auto& pm = dc.pm(i);
    const ProfileShape& shape = dc.shape_of(i);
    total_placed += pm.vms.size();
    std::vector<int> replay(static_cast<std::size_t>(shape.total_dims()), 0);
    for (const auto& placed : pm.vms) {
      std::set<int> dims;
      for (auto [dim, amount] : placed.assignments) {
        // Constraint (4)/(9): one item of a VM per dimension.
        ASSERT_TRUE(dims.insert(dim).second);
        ASSERT_GT(amount, 0);
        replay[static_cast<std::size_t>(dim)] += amount;
      }
    }
    for (int d = 0; d < shape.total_dims(); ++d) {
      // Ledger consistency and constraint (5)/(6)/(10): capacity holds.
      ASSERT_EQ(replay[static_cast<std::size_t>(d)], pm.usage.level(d));
      ASSERT_LE(pm.usage.level(d), shape.dim_capacity(d));
    }
    // Canonical key cache in sync.
    ASSERT_EQ(pm.canonical_key, pm.usage.canonical(shape).pack(shape));
  }
  // Constraint (1): every placed VM on exactly one PM.
  ASSERT_EQ(total_placed, placed_vms);
  ASSERT_EQ(dc.vm_count(), placed_vms);
}

TEST_P(PlacementPropertySweep, ConstraintsHoldAfterPlacementAndChurn) {
  const auto [kind, seed, cpu_levels] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 1000003 + cpu_levels);
  const Catalog catalog = sweep_catalog(cpu_levels, rng);
  auto tables = std::make_shared<const ScoreTableSet>(
      build_score_tables(catalog, {}, std::nullopt));
  Datacenter dc(catalog, std::vector<std::size_t>(30, 0));
  auto algorithm = make_algorithm(kind, tables);

  // Batch placement.
  const std::size_t n = 25;
  std::vector<Vm> vms;
  for (std::size_t i = 0; i < n; ++i) {
    vms.push_back(Vm{static_cast<VmId>(i), rng.uniform_index(catalog.vm_types().size())});
  }
  const auto rejected = algorithm->place_all(dc, vms);
  expect_constraints_hold(dc, n - rejected.size());

  // Churn: random removals and re-placements.
  std::vector<VmId> placed;
  for (const Vm& vm : vms) {
    if (dc.pm_of(vm.id).has_value()) placed.push_back(vm.id);
  }
  for (int round = 0; round < 15 && !placed.empty(); ++round) {
    const std::size_t pick = rng.uniform_index(placed.size());
    const VmId id = placed[pick];
    const auto record = dc.remove(id);
    expect_constraints_hold(dc, dc.vm_count());
    const auto dest = algorithm->place(dc, record.vm);
    if (!dest.has_value()) {
      placed.erase(placed.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    expect_constraints_hold(dc, dc.vm_count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementPropertySweep,
    ::testing::Combine(::testing::Values(AlgorithmKind::kPageRankVm, AlgorithmKind::kCompVm,
                                         AlgorithmKind::kFfdSum, AlgorithmKind::kFirstFit),
                       ::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(2, 4)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param)) + "_q" +
             std::to_string(std::get<2>(info.param));
    });

class ScoreTablePropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(ScoreTablePropertySweep, TableInvariantsAcrossRandomCatalogs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  const Catalog catalog = sweep_catalog(4, rng);
  const ProfileShape& shape = catalog.shape(0);
  const auto& fitting = catalog.fitting_demands(0);
  const ProfileGraph graph(shape, fitting.demands);
  const ScoreTable table = ScoreTable::build(graph);

  // DAG, scores within [0, 1] after max-normalization, best_after agrees
  // with feasibility.
  EXPECT_NO_THROW(topological_order(graph.graph()));
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    const double s = table.score(graph.key_of(u));
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-6);
    const Profile p = graph.profile_of(u);
    for (std::size_t t = 0; t < fitting.demands.size(); ++t) {
      const bool fits = demand_fits(shape, p, fitting.demands[t]);
      EXPECT_EQ(table.best_after(graph.key_of(u), t).has_value(), fits);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScoreTablePropertySweep, ::testing::Range(0, 8));

class SimulationPropertySweep
    : public ::testing::TestWithParam<std::tuple<AlgorithmKind, int>> {};

TEST_P(SimulationPropertySweep, MetricsAreInternallyConsistent) {
  const auto [kind, seed] = GetParam();
  const Catalog catalog = geni_catalog();
  auto tables = std::make_shared<const ScoreTableSet>(
      build_score_tables(catalog, {}, std::nullopt));
  Rng rng(static_cast<std::uint64_t>(seed));
  Datacenter dc(catalog, std::vector<std::size_t>(15, 0));
  const auto vms = random_vm_requests(rng, catalog, 30);
  std::vector<std::size_t> binding = random_trace_binding(rng, vms.size(), 4);
  std::vector<UtilizationTrace> raw;
  for (int i = 0; i < 4; ++i) {
    std::vector<double> samples;
    for (int t = 0; t < 20; ++t) samples.push_back(rng.uniform(0.0, 1.0));
    raw.emplace_back(std::move(samples));
  }
  SimulationOptions options;
  options.epochs = 20;
  options.record_events = true;
  CloudSimulation sim(std::move(dc), vms, binding, TraceSet(std::move(raw)), options);
  auto algorithm = make_algorithm(kind, tables);
  auto policy = default_policy_for(kind, tables);
  const SimMetrics metrics = sim.run(*algorithm, *policy);

  EXPECT_LE(metrics.pms_used_initial, metrics.pms_used_max);
  EXPECT_GE(metrics.pms_used_ever, metrics.pms_used_max);
  EXPECT_EQ(metrics.vm_migrations, sim.events().count(SimEventType::kVmMigrated));
  EXPECT_EQ(metrics.failed_migrations, sim.events().count(SimEventType::kMigrationFailed));
  EXPECT_EQ(metrics.overload_events, sim.events().count(SimEventType::kPmOverloaded));
  EXPECT_EQ(metrics.rejected_vms, sim.events().count(SimEventType::kVmRejected));
  EXPECT_GE(metrics.slo_violation_percent, 0.0);
  EXPECT_LE(metrics.slo_violation_percent, 100.0);
  EXPECT_EQ(sim.datacenter().vm_count() + metrics.rejected_vms, vms.size());
  // The final ledger still satisfies every constraint.
  expect_constraints_hold(sim.datacenter(), sim.datacenter().vm_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulationPropertySweep,
    ::testing::Combine(::testing::Values(AlgorithmKind::kPageRankVm, AlgorithmKind::kCompVm,
                                         AlgorithmKind::kFfdSum, AlgorithmKind::kFirstFit),
                       ::testing::Range(1, 5)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace prvm
