#include "sim/migration_policy.hpp"

#include <gtest/gtest.h>

#include "core/catalog_graphs.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

std::shared_ptr<const ScoreTableSet> geni_tables() {
  static const auto tables =
      std::make_shared<const ScoreTableSet>(build_score_tables(geni_catalog(), {}, std::nullopt));
  return tables;
}

// Minimal SimView over a bare datacenter (no traces needed by these
// policies' selection logic).
class StaticView final : public SimView {
 public:
  explicit StaticView(const Datacenter& dc) : dc_(dc) {}
  const Datacenter& datacenter() const override { return dc_; }
  double vm_cpu_ghz(VmId) const override { return 0.0; }
  double pm_cpu_utilization(PmIndex) const override { return 0.0; }

 private:
  const Datacenter& dc_;
};

TEST(MinimumMigrationTime, PicksSmallestMemoryFootprint) {
  // EC2 catalog: m3.2xlarge (30 GiB) vs m3.medium (3.75 GiB).
  Datacenter dc(ec2_catalog(), {0});
  dc.place_first_fit(0, Vm{10, 3});  // 2xlarge
  dc.place_first_fit(0, Vm{11, 0});  // medium
  StaticView view(dc);
  MinimumMigrationTimePolicy policy;
  EXPECT_EQ(policy.select_victim(view, 0), std::optional<VmId>{11});
}

TEST(MinimumMigrationTime, TieBreaksByLowestId) {
  Datacenter dc(ec2_catalog(), {0});
  dc.place_first_fit(0, Vm{7, 0});
  dc.place_first_fit(0, Vm{3, 0});
  StaticView view(dc);
  MinimumMigrationTimePolicy policy;
  EXPECT_EQ(policy.select_victim(view, 0), std::optional<VmId>{3});
}

TEST(MinimumMigrationTime, EmptyPmHasNoVictim) {
  Datacenter dc(ec2_catalog(), {0});
  StaticView view(dc);
  MinimumMigrationTimePolicy policy;
  EXPECT_FALSE(policy.select_victim(view, 0).has_value());
}

TEST(PageRankPolicy, PicksVictimLeavingBestResidual) {
  const Catalog catalog = geni_catalog();
  auto tables = geni_tables();
  Datacenter dc(catalog, {0});
  const ProfileShape& shape = catalog.shape(0);
  // Job A: 2 vCPUs stacked with B on cores 0/1; Job B likewise; removing
  // either leaves [1,1,0,0]. Job C: 4 vCPUs spread -> removing C leaves
  // [2,2,0,0]. Scores decide; verify the policy agrees with a manual argmax.
  dc.place(0, Vm{1, 0}, DemandPlacement{{{0, 1}, {1, 1}}, Profile::from_levels(shape, {1, 1, 0, 0})});
  dc.place(0, Vm{2, 0}, DemandPlacement{{{0, 1}, {1, 1}}, Profile::from_levels(shape, {2, 2, 0, 0})});
  dc.place(0, Vm{3, 1},
           DemandPlacement{{{0, 1}, {1, 1}, {2, 1}, {3, 1}},
                           Profile::from_levels(shape, {3, 3, 1, 1})});
  StaticView view(dc);
  PageRankMigrationPolicy policy(tables);
  const auto victim = policy.select_victim(view, 0);
  ASSERT_TRUE(victim.has_value());

  const ScoreTable& table = tables->table(0);
  double best_score = -1.0;
  VmId best_vm = 0;
  for (const auto& placed : dc.pm(0).vms) {
    std::vector<int> levels(dc.pm(0).usage.levels().begin(), dc.pm(0).usage.levels().end());
    for (auto [dim, amount] : placed.assignments) levels[static_cast<std::size_t>(dim)] -= amount;
    const double s =
        table.score(Profile::from_levels(shape, levels).canonical(shape).pack(shape));
    if (s > best_score || (s == best_score && placed.vm.id < best_vm)) {
      best_score = s;
      best_vm = placed.vm.id;
    }
  }
  EXPECT_EQ(*victim, best_vm);
}

TEST(PageRankPolicy, RequiresTables) {
  EXPECT_THROW(PageRankMigrationPolicy(nullptr), std::invalid_argument);
}


// A view that reports per-VM CPU from a fixed map (for the CPU-aware
// victim policies).
class CpuView final : public SimView {
 public:
  CpuView(const Datacenter& dc, std::unordered_map<VmId, double> cpu)
      : dc_(dc), cpu_(std::move(cpu)) {}
  const Datacenter& datacenter() const override { return dc_; }
  double vm_cpu_ghz(VmId vm) const override {
    const auto it = cpu_.find(vm);
    return it == cpu_.end() ? 0.0 : it->second;
  }
  double pm_cpu_utilization(PmIndex) const override { return 0.0; }

 private:
  const Datacenter& dc_;
  std::unordered_map<VmId, double> cpu_;
};

TEST(MaxCpuVictim, PicksHottestVm) {
  Datacenter dc(ec2_catalog(), {0});
  dc.place_first_fit(0, Vm{1, 0});
  dc.place_first_fit(0, Vm{2, 0});
  dc.place_first_fit(0, Vm{3, 0});
  CpuView view(dc, {{1, 0.4}, {2, 1.9}, {3, 0.7}});
  MaxCpuVictimPolicy policy;
  EXPECT_EQ(policy.select_victim(view, 0), std::optional<VmId>{2});
}

TEST(MaxCpuVictim, TieBreaksByLowestId) {
  Datacenter dc(ec2_catalog(), {0});
  dc.place_first_fit(0, Vm{5, 0});
  dc.place_first_fit(0, Vm{4, 0});
  CpuView view(dc, {{4, 1.0}, {5, 1.0}});
  MaxCpuVictimPolicy policy;
  EXPECT_EQ(policy.select_victim(view, 0), std::optional<VmId>{4});
}

TEST(RandomVictim, PicksOnlyResidents) {
  Datacenter dc(ec2_catalog(), {0});
  dc.place_first_fit(0, Vm{7, 0});
  dc.place_first_fit(0, Vm{8, 0});
  StaticView view(dc);
  RandomVictimPolicy policy(3);
  for (int i = 0; i < 20; ++i) {
    const auto victim = policy.select_victim(view, 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(*victim == 7 || *victim == 8);
  }
}

TEST(RandomVictim, EmptyPmHasNoVictim) {
  Datacenter dc(ec2_catalog(), {0});
  StaticView view(dc);
  RandomVictimPolicy policy(3);
  EXPECT_FALSE(policy.select_victim(view, 0).has_value());
}

TEST(DefaultPolicyFor, MapsKindsToPolicies) {
  auto pagerank = default_policy_for(AlgorithmKind::kPageRankVm, geni_tables());
  EXPECT_EQ(pagerank->name(), "pagerank-residual");
  for (AlgorithmKind kind :
       {AlgorithmKind::kFirstFit, AlgorithmKind::kFfdSum, AlgorithmKind::kCompVm}) {
    EXPECT_EQ(default_policy_for(kind)->name(), "min-migration-time");
  }
}

}  // namespace
}  // namespace prvm
