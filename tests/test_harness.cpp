#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include "harness/report.hpp"

namespace prvm {
namespace {

Ec2ExperimentConfig tiny_config() {
  Ec2ExperimentConfig config;
  config.vm_count = 40;
  config.repetitions = 2;
  config.seed = 77;
  config.sim.epochs = 12;
  config.fleet_size = 100;
  return config;
}

TEST(Ec2Experiment, RunsAndSummarizes) {
  const Ec2Experiment experiment(tiny_config());
  const auto result = experiment.run(AlgorithmKind::kFirstFit);
  EXPECT_EQ(result.algorithm, AlgorithmKind::kFirstFit);
  ASSERT_EQ(result.runs.size(), 2u);
  for (const SimMetrics& m : result.runs) {
    EXPECT_GT(m.pms_used_initial, 0u);
    EXPECT_EQ(m.rejected_vms, 0u);
    EXPECT_GT(m.energy_kwh, 0.0);
  }
  const Summary pms = result.pms_used();
  EXPECT_EQ(pms.n, 2u);
  EXPECT_GE(pms.max, pms.min);
  EXPECT_GT(result.energy_kwh().median, 0.0);
  EXPECT_GE(result.migrations().median, 0.0);
  EXPECT_GE(result.slo_percent().median, 0.0);
}

TEST(Ec2Experiment, DeterministicAcrossInstances) {
  const Ec2Experiment a(tiny_config());
  const Ec2Experiment b(tiny_config());
  const auto ra = a.run(AlgorithmKind::kCompVm);
  const auto rb = b.run(AlgorithmKind::kCompVm);
  ASSERT_EQ(ra.runs.size(), rb.runs.size());
  for (std::size_t i = 0; i < ra.runs.size(); ++i) {
    EXPECT_EQ(ra.runs[i].pms_used_max, rb.runs[i].pms_used_max);
    EXPECT_EQ(ra.runs[i].vm_migrations, rb.runs[i].vm_migrations);
    EXPECT_DOUBLE_EQ(ra.runs[i].energy_kwh, rb.runs[i].energy_kwh);
  }
}

TEST(Ec2Experiment, RepetitionsDiffer) {
  Ec2ExperimentConfig config = tiny_config();
  config.repetitions = 4;
  const Ec2Experiment experiment(config);
  const auto result = experiment.run(AlgorithmKind::kFirstFit);
  // Different seeds -> (almost surely) at least one differing run.
  bool any_difference = false;
  for (std::size_t i = 1; i < result.runs.size(); ++i) {
    if (result.runs[i].energy_kwh != result.runs[0].energy_kwh) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Ec2Experiment, GoogleTraceKind) {
  Ec2ExperimentConfig config = tiny_config();
  config.trace = TraceKind::kGoogleCluster;
  const Ec2Experiment experiment(config);
  const auto result = experiment.run(AlgorithmKind::kFirstFit);
  EXPECT_EQ(result.runs.size(), 2u);
  EXPECT_STREQ(to_string(TraceKind::kGoogleCluster), "Google");
  EXPECT_STREQ(to_string(TraceKind::kPlanetLab), "PlanetLab");
}

TEST(Ec2Experiment, ValidatesConfig) {
  Ec2ExperimentConfig config = tiny_config();
  config.vm_count = 0;
  EXPECT_THROW(Ec2Experiment{config}, std::invalid_argument);
  config = tiny_config();
  config.repetitions = 0;
  EXPECT_THROW(Ec2Experiment{config}, std::invalid_argument);
}

TEST(Report, SummaryCellFormat) {
  Summary s;
  s.median = 12.0;
  s.p1 = 10.5;
  s.p99 = 13.25;
  EXPECT_EQ(summary_cell(s, 1), "12.0 [10.5; 13.2]");  // iostream half-even
  EXPECT_EQ(summary_cell(s, 0), "12 [10; 13]");
}

TEST(Report, FigureTableLaysOutSeries) {
  Summary s;
  s.median = 5.0;
  std::vector<FigurePoint> points;
  for (double x : {1000.0, 2000.0}) {
    for (AlgorithmKind k : all_algorithm_kinds()) {
      Summary v = s;
      v.median = x / 100.0 + static_cast<double>(k);
      v.p1 = v.median;
      v.p99 = v.median;
      points.push_back({x, k, v});
    }
  }
  const TextTable table = figure_table("VMs", points, 1);
  EXPECT_EQ(table.rows(), 2u);
  const std::string text = table.str();
  EXPECT_NE(text.find("PageRankVM"), std::string::npos);
  EXPECT_NE(text.find("1000"), std::string::npos);
  // A missing series renders "-".
  const TextTable sparse = figure_table("VMs", {points[0]}, 1);
  EXPECT_NE(sparse.str().find("-"), std::string::npos);
}

TEST(Report, OrderingVerdictDetectsViolations) {
  auto point = [](double x, AlgorithmKind k, double median) {
    Summary s;
    s.median = median;
    return FigurePoint{x, k, s};
  };
  // Correct paper ordering.
  std::vector<FigurePoint> good = {
      point(1, AlgorithmKind::kPageRankVm, 1.0), point(1, AlgorithmKind::kCompVm, 2.0),
      point(1, AlgorithmKind::kFfdSum, 3.0), point(1, AlgorithmKind::kFirstFit, 4.0)};
  EXPECT_NE(ordering_verdict(good).find("holds"), std::string::npos);
  // Violated ordering.
  std::vector<FigurePoint> bad = good;
  bad[0].summary.median = 10.0;
  const std::string verdict = ordering_verdict(bad);
  EXPECT_NE(verdict.find("violations"), std::string::npos);
  EXPECT_NE(verdict.find("PageRankVM"), std::string::npos);
}

}  // namespace
}  // namespace prvm
