// Differential and invariant tests for the placement index.
//
// The indexed PageRankVM engine must be observationally identical to the
// legacy linear scan (PageRankVmOptions::use_index = false): same chosen PM
// for every VM, same rejections, same canonical profile trajectory — across
// catalogs, seeds, 2-choice mode and migration re-placement. Separately, the
// datacenter's incrementally-maintained bucket index must satisfy its
// structural invariants under arbitrary place/remove churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cluster/catalog.hpp"
#include "cluster/datacenter.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "placement/pagerank_vm.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

std::shared_ptr<const ScoreTableSet> tables_for(const Catalog& catalog) {
  // The default on-disk cache keeps repeated test runs fast (EC2-scale
  // graphs take a moment to build the first time).
  return std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
}

/// Two datacenters driven in lockstep: one by the indexed engine, one by the
/// legacy linear scan. Every operation asserts both made the same decision.
class TwinRun {
 public:
  TwinRun(const Catalog& catalog, std::size_t fleet, std::uint64_t engine_seed,
          bool two_choice)
      : indexed_dc_(catalog, mixed_pm_fleet(catalog, fleet)),
        linear_dc_(catalog, mixed_pm_fleet(catalog, fleet)),
        tables_(tables_for(catalog)),
        indexed_(tables_, {two_choice, engine_seed, /*use_index=*/true}),
        linear_(tables_, {two_choice, engine_seed, /*use_index=*/false}) {}

  /// Places `vm` through both engines; returns whether it was placed.
  bool place(const Vm& vm, const PlacementConstraints& constraints = {}) {
    const auto a = indexed_.place(indexed_dc_, vm, constraints);
    const auto b = linear_.place(linear_dc_, vm, constraints);
    EXPECT_EQ(a, b) << "engines disagree on the PM for VM " << vm.id;
    if (a.has_value() && b.has_value()) {
      // Concrete dimension assignments may be permuted differently, but the
      // canonical profile of the chosen PM must be identical — otherwise the
      // trajectories would drift apart on later VMs.
      EXPECT_EQ(indexed_dc_.pm(*a).canonical_key, linear_dc_.pm(*b).canonical_key)
          << "canonical profiles diverged on PM " << *a << " after VM " << vm.id;
    }
    return a.has_value();
  }

  void remove(VmId id) {
    const auto a = indexed_dc_.pm_of(id);
    const auto b = linear_dc_.pm_of(id);
    ASSERT_EQ(a, b);
    indexed_dc_.remove(id);
    linear_dc_.remove(id);
  }

  void check() const {
    indexed_dc_.check_index_invariants();
    ASSERT_EQ(indexed_dc_.used_pms(), linear_dc_.used_pms());
    ASSERT_EQ(indexed_dc_.vm_count(), linear_dc_.vm_count());
  }

  Datacenter& indexed_dc() { return indexed_dc_; }

 private:
  Datacenter indexed_dc_;
  Datacenter linear_dc_;
  std::shared_ptr<const ScoreTableSet> tables_;
  PageRankVm indexed_;
  PageRankVm linear_;
};

/// Streams `total` placements with steady removal churn through both
/// engines, asserting identical decisions throughout.
void run_churn_differential(const Catalog& catalog, std::size_t fleet, std::size_t total,
                            std::uint64_t seed, bool two_choice) {
  TwinRun twin(catalog, fleet, /*engine_seed=*/seed, two_choice);
  Rng rng(seed);
  const std::vector<double> mix = default_vm_mix(catalog);
  const std::vector<Vm> vms = weighted_vm_requests(rng, catalog, total, mix);

  // Keep roughly this many VMs live so buckets both grow and shrink.
  const std::size_t live_cap = 3 * fleet / 2;
  std::vector<VmId> live;
  for (std::size_t step = 0; step < vms.size(); ++step) {
    while (live.size() >= live_cap || (!live.empty() && rng.uniform_index(4) == 0)) {
      const std::size_t pick = rng.uniform_index(live.size());
      twin.remove(live[pick]);
      live[pick] = live.back();
      live.pop_back();
      if (live.size() < live_cap) break;
    }
    if (twin.place(vms[step])) live.push_back(vms[step].id);
    if (step % 500 == 0) twin.check();
    if (::testing::Test::HasFailure()) return;  // stop at the first divergence
  }
  twin.check();
}

TEST(PlacementIndexDifferential, Ec2ChurnMatchesLinearScan) {
  run_churn_differential(ec2_sim_catalog(), /*fleet=*/400, /*total=*/4000, /*seed=*/17,
                         /*two_choice=*/false);
}

TEST(PlacementIndexDifferential, Ec2SecondSeedMatchesLinearScan) {
  run_churn_differential(ec2_sim_catalog(), /*fleet=*/300, /*total=*/2500, /*seed=*/4242,
                         /*two_choice=*/false);
}

TEST(PlacementIndexDifferential, GeniChurnMatchesLinearScan) {
  run_churn_differential(geni_catalog(), /*fleet=*/80, /*total=*/2500, /*seed=*/7,
                         /*two_choice=*/false);
}

TEST(PlacementIndexDifferential, TwoChoiceModeMatchesLinearScan) {
  // 2-choice shares the linear candidate sampler (same RNG stream) so the
  // sampled pair — and hence the decision — must be identical.
  run_churn_differential(ec2_sim_catalog(), /*fleet=*/200, /*total=*/2000, /*seed=*/91,
                         /*two_choice=*/true);
}

TEST(PlacementIndexDifferential, MigrationReplacementMatchesLinearScan) {
  const Catalog catalog = ec2_sim_catalog();
  TwinRun twin(catalog, /*fleet=*/250, /*engine_seed=*/5, /*two_choice=*/false);
  Rng rng(2026);
  const std::vector<Vm> vms =
      weighted_vm_requests(rng, catalog, 600, default_vm_mix(catalog));
  std::vector<VmId> live;
  for (const Vm& vm : vms) {
    if (twin.place(vm)) live.push_back(vm.id);
  }
  ASSERT_FALSE(live.empty());
  twin.check();

  // Simulated migrations: evict a random VM and re-place it with its source
  // PM excluded — the constrained indexed path must match the linear scan.
  // Every third migration additionally vetoes moderately loaded PMs, the way
  // the simulator's overload veto does.
  for (int round = 0; round < 600; ++round) {
    const VmId id = live[rng.uniform_index(live.size())];
    const auto source = twin.indexed_dc().pm_of(id);
    ASSERT_TRUE(source.has_value());
    const Vm vm = Vm{id, twin.indexed_dc().pm(*source).vms.front().vm.type_index};
    twin.remove(id);
    PlacementConstraints constraints;
    constraints.exclude = *source;
    if (round % 3 == 0) {
      constraints.allow = [](const Datacenter& dc, PmIndex pm) {
        return dc.pm(pm).vms.size() < 6;
      };
    }
    if (!twin.place(vm, constraints)) {
      live.erase(std::find(live.begin(), live.end(), id));
      if (live.empty()) break;
    }
    if (round % 100 == 0) twin.check();
    if (::testing::Test::HasFailure()) return;
  }
  twin.check();
}

TEST(PlacementIndex, InvariantsHoldUnderRandomChurn) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, mixed_pm_fleet(catalog, 60));
  Rng rng(123);
  std::vector<VmId> live;
  VmId next_id = 0;
  for (int op = 0; op < 4000; ++op) {
    const bool do_remove = !live.empty() && (live.size() > 150 || rng.uniform_index(3) == 0);
    if (do_remove) {
      const std::size_t pick = rng.uniform_index(live.size());
      dc.remove(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    } else {
      const Vm vm{next_id++, rng.uniform_index(catalog.vm_types().size())};
      // Random feasible PM, biased towards used ones to pile VMs up.
      std::vector<PmIndex> candidates;
      for (PmIndex i = 0; i < dc.pm_count(); ++i) {
        if (dc.fits(i, vm.type_index)) candidates.push_back(i);
      }
      if (candidates.empty()) continue;
      dc.place_first_fit(candidates[rng.uniform_index(candidates.size())], vm);
      live.push_back(vm.id);
    }
    if (op % 50 == 0) {
      ASSERT_NO_THROW(dc.check_index_invariants());
    }
  }
  ASSERT_NO_THROW(dc.check_index_invariants());

  // Drain completely: the index must collapse back to the empty state.
  while (!live.empty()) {
    dc.remove(live.back());
    live.pop_back();
  }
  ASSERT_NO_THROW(dc.check_index_invariants());
  ASSERT_EQ(dc.used_count(), 0u);
  for (std::size_t t = 0; t < catalog.pm_types().size(); ++t) {
    EXPECT_EQ(dc.used_bucket_count(t), 0u);
    EXPECT_EQ(dc.used_count_of_type(t), 0u);
  }
}

TEST(PlacementIndex, NextUnusedTracksTheFreeList) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(70, 0));
  Rng rng(5);
  std::vector<VmId> live;
  VmId next_id = 0;
  for (int op = 0; op < 500; ++op) {
    if (!live.empty() && rng.uniform_index(2) == 0) {
      const std::size_t pick = rng.uniform_index(live.size());
      dc.remove(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    } else {
      const Vm vm{next_id++, 0};
      const auto target = dc.next_unused(rng.uniform_index(dc.pm_count()));
      if (!target.has_value() || !dc.fits(*target, 0)) continue;
      dc.place_first_fit(*target, vm);
      live.push_back(vm.id);
    }
    // next_unused must enumerate exactly the complement of the used set,
    // in index order — the contract unused_pms() is built on.
    std::vector<PmIndex> via_next;
    for (auto i = dc.next_unused(0); i.has_value(); i = dc.next_unused(*i + 1)) {
      via_next.push_back(*i);
    }
    ASSERT_EQ(via_next, dc.unused_pms());
    ASSERT_EQ(via_next.size() + dc.used_count(), dc.pm_count());
    for (PmIndex i : via_next) ASSERT_FALSE(dc.pm(i).used());
  }
}

TEST(PlacementIndex, BucketLookupMatchesLedger) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, mixed_pm_fleet(catalog, 40));
  Rng rng(9);
  VmId next_id = 0;
  for (int op = 0; op < 300; ++op) {
    const Vm vm{next_id++, rng.uniform_index(catalog.vm_types().size())};
    std::vector<PmIndex> candidates;
    for (PmIndex i = 0; i < dc.pm_count(); ++i) {
      if (dc.fits(i, vm.type_index)) candidates.push_back(i);
    }
    if (candidates.empty()) break;
    dc.place_first_fit(candidates[rng.uniform_index(candidates.size())], vm);
  }
  // Every used PM must be findable through used_bucket() by its own key,
  // and for_each_used_bucket must enumerate the used set exactly. The SoA
  // accessors (bucket_keys / bucket_residuals / bucket_at) must agree with
  // the view-based enumeration slot for slot.
  std::size_t enumerated = 0;
  for (std::size_t t = 0; t < catalog.pm_types().size(); ++t) {
    const auto keys = dc.bucket_keys(t);
    const auto residuals = dc.bucket_residuals(t);
    ASSERT_EQ(keys.size(), residuals.size());
    ASSERT_EQ(keys.size(), dc.used_bucket_count(t));
    std::size_t slot = 0;
    dc.for_each_used_bucket(t, [&](ProfileKey key, Datacenter::BucketView pms) {
      ASSERT_LT(slot, keys.size());
      EXPECT_EQ(keys[slot], key);
      const auto by_key = dc.used_bucket(t, key);
      const auto by_slot = dc.bucket_at(t, slot);
      EXPECT_EQ(std::vector<PmIndex>(by_key.begin(), by_key.end()),
                std::vector<PmIndex>(pms.begin(), pms.end()));
      EXPECT_EQ(std::vector<PmIndex>(by_slot.begin(), by_slot.end()),
                std::vector<PmIndex>(pms.begin(), pms.end()));
      std::uint32_t walked = 0;
      for (PmIndex i : pms) {
        EXPECT_EQ(dc.pm(i).canonical_key, key);
        EXPECT_EQ(dc.pm(i).type_index, t);
        // The packed residual summary must never reject a VM that fits a
        // member (conservative prefilter contract).
        for (std::size_t v = 0; v < catalog.vm_types().size(); ++v) {
          if (!dc.fits(i, v)) continue;
          const auto& demand = catalog.demand(t, v);
          ASSERT_TRUE(demand.has_value());
          EXPECT_TRUE(resmask::may_fit(
              residuals[slot], resmask::pack_need(catalog.shape(t), *demand)));
        }
        ++walked;
      }
      EXPECT_EQ(walked, pms.size());
      enumerated += pms.size();
      ++slot;
    });
    EXPECT_EQ(slot, keys.size());
  }
  EXPECT_EQ(enumerated, dc.used_count());
  EXPECT_TRUE(dc.used_bucket(0, ~ProfileKey{0}).empty());
}

TEST(PlacementIndex, ResidualMaskIsExactOnGroupTotals) {
  // may_fit compares per-group totals: it must accept exactly when every
  // group's residual covers the demand total, across field boundaries.
  const ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 4, 8},
                            DimensionGroup{ResourceKind::kMemory, 1, 16},
                            DimensionGroup{ResourceKind::kDisk, 2, 8}});
  const Profile usage = Profile::from_levels(shape, {8, 3, 0, 0, 5, 7, 0});
  const std::uint64_t free = resmask::pack_free(shape, usage);
  // Group residuals: cpu 32-11=21, mem 16-5=11, disk 16-7=9.
  EXPECT_EQ(free & 0xFFFF, 21u);
  EXPECT_EQ((free >> 16) & 0xFFFF, 11u);
  EXPECT_EQ((free >> 32) & 0xFFFF, 9u);

  const QuantizedDemand fits{{{8, 8, 5}, {11}, {9}}};
  const QuantizedDemand cpu_over{{{8, 8, 6}, {11}, {9}}};
  const QuantizedDemand mem_over{{{1}, {12}, {}}};
  const QuantizedDemand disk_over{{{}, {}, {5, 5}}};
  EXPECT_TRUE(resmask::may_fit(free, resmask::pack_need(shape, fits)));
  EXPECT_FALSE(resmask::may_fit(free, resmask::pack_need(shape, cpu_over)));
  EXPECT_FALSE(resmask::may_fit(free, resmask::pack_need(shape, mem_over)));
  EXPECT_FALSE(resmask::may_fit(free, resmask::pack_need(shape, disk_over)));
  // Zero demand always passes; zero residual only passes zero demand.
  EXPECT_TRUE(resmask::may_fit(free, 0));
  EXPECT_TRUE(resmask::may_fit(0, 0));
  EXPECT_FALSE(resmask::may_fit(0, 1));
}

}  // namespace
}  // namespace prvm
