#include "profile/quantization.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace prvm {
namespace {

TEST(Quantization, ZeroDemandIsFree) {
  EXPECT_EQ(quantize_demand(0.0, 10.0, 4), 0);
}

TEST(Quantization, PositiveDemandCostsAtLeastOneLevel) {
  EXPECT_EQ(quantize_demand(0.001, 100.0, 4), 1);
}

TEST(Quantization, RoundsUp) {
  // unit = 2.5; 3.0 -> 2 levels, 5.0 -> exactly 2, 5.1 -> 3.
  EXPECT_EQ(quantize_demand(3.0, 10.0, 4), 2);
  EXPECT_EQ(quantize_demand(5.0, 10.0, 4), 2);
  EXPECT_EQ(quantize_demand(5.1, 10.0, 4), 3);
}

TEST(Quantization, ExactMultiplesDoNotOvershoot) {
  // FP noise guard: k * (c/k) must quantize to exactly k levels.
  for (int levels : {3, 6, 7, 16}) {
    const double capacity = 2.6;
    EXPECT_EQ(quantize_demand(capacity, capacity, levels), levels);
    const double unit = capacity / levels;
    for (int k = 1; k <= levels; ++k) {
      EXPECT_EQ(quantize_demand(k * unit, capacity, levels), k)
          << "levels=" << levels << " k=" << k;
    }
  }
}

TEST(Quantization, Ec2ValuesFromThePaper) {
  // M3 core 2.6 GHz at 4 levels (0.65 GHz/level): a 0.6 GHz vCPU costs 1.
  EXPECT_EQ(quantize_demand(0.6, 2.6, 4), 1);
  // A 0.7 GHz c3 vCPU costs 2 levels on M3 (0.7 > 0.65)...
  EXPECT_EQ(quantize_demand(0.7, 2.6, 4), 2);
  // ...and exactly 1 level on C3 (2.8/4 = 0.7).
  EXPECT_EQ(quantize_demand(0.7, 2.8, 4), 1);
  // M3 memory 64 GiB at 16 levels (4 GiB/level): Table I memory sizes.
  EXPECT_EQ(quantize_demand(3.75, 64.0, 16), 1);
  EXPECT_EQ(quantize_demand(7.5, 64.0, 16), 2);
  EXPECT_EQ(quantize_demand(15.0, 64.0, 16), 4);
  EXPECT_EQ(quantize_demand(30.0, 64.0, 16), 8);
}

TEST(Quantization, OverflowThrows) {
  EXPECT_THROW(quantize_demand(11.0, 10.0, 4), std::invalid_argument);
}

TEST(Quantization, RejectsBadArguments) {
  EXPECT_THROW(quantize_demand(-1.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(quantize_demand(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(quantize_demand(1.0, 10.0, 0), std::invalid_argument);
}

TEST(Quantization, FloorVariant) {
  EXPECT_EQ(quantize_usage_floor(0.0, 10.0, 4), 0);
  EXPECT_EQ(quantize_usage_floor(2.4, 10.0, 4), 0);
  EXPECT_EQ(quantize_usage_floor(2.5, 10.0, 4), 1);  // exact boundary
  EXPECT_EQ(quantize_usage_floor(9.9, 10.0, 4), 3);
  EXPECT_EQ(quantize_usage_floor(10.0, 10.0, 4), 4);
  EXPECT_EQ(quantize_usage_floor(12.0, 10.0, 4), 4);  // clamped
}

TEST(Quantization, ConfigLevelsByKind) {
  QuantizationConfig q;
  q.cpu_levels = 4;
  q.mem_levels = 16;
  q.disk_levels = 2;
  EXPECT_EQ(q.levels_for(ResourceKind::kCpu), 4);
  EXPECT_EQ(q.levels_for(ResourceKind::kMemory), 16);
  EXPECT_EQ(q.levels_for(ResourceKind::kDisk), 2);
}

}  // namespace
}  // namespace prvm
