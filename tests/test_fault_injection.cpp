// Fault-injection tests for the durability layer: the IoEnv seam and its
// schedule grammar, hardened WAL/snapshot IO (EINTR storms, short writes,
// ENOSPC with errno-rich errors), and the service's degrade-don't-die state
// machine — flush/snapshot failures must demote acks to degraded_storage,
// reads must keep serving, and a storage probe must bring writes back with
// every acknowledged decision intact.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "cluster/catalog.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "service/io_env.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/wal.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

std::shared_ptr<const ScoreTableSet> tables_for(const Catalog& catalog) {
  return std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("prvm-fault-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

// ---------------------------------------------------------------------------
// Schedule grammar.

TEST(FaultSchedule, ParsesCompactSpecs) {
  const FaultSchedule schedule = FaultSchedule::parse(
      "write:after=100:errno=ENOSPC:count=20;fsync:every=4:delay_ms=50;seed=7");
  ASSERT_EQ(schedule.rules.size(), 2u);
  EXPECT_EQ(schedule.seed, 7u);
  EXPECT_EQ(schedule.rules[0].op, IoOp::kWrite);
  EXPECT_EQ(schedule.rules[0].after, 100u);
  EXPECT_EQ(schedule.rules[0].err, ENOSPC);
  EXPECT_EQ(schedule.rules[0].max_fires, 20u);
  EXPECT_EQ(schedule.rules[1].op, IoOp::kFsync);
  EXPECT_EQ(schedule.rules[1].every, 4u);
  EXPECT_EQ(schedule.rules[1].delay_ms, 50u);

  // errno by number; a rule with no trigger defaults to every call.
  const FaultSchedule numeric = FaultSchedule::parse("rename:errno=28");
  ASSERT_EQ(numeric.rules.size(), 1u);
  EXPECT_EQ(numeric.rules[0].err, 28);
  EXPECT_EQ(numeric.rules[0].every, 1u);
}

TEST(FaultSchedule, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultSchedule::parse("chmod:errno=EIO"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("write:wat=1"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("write:errno=EWAT"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("write:nth=x:errno=EIO"), std::invalid_argument);
  EXPECT_THROW(FaultSchedule::parse("write:nth=3"), std::invalid_argument)
      << "a rule with a trigger but no effect is a spec bug, not a no-op";
  EXPECT_THROW(FaultSchedule::parse("write:short=0.5:errno=EIO;fsync"),
               std::invalid_argument);
}

TEST(FaultSchedule, EnvFactoryFollowsSpec) {
  EXPECT_EQ(io_env_from_spec(""), nullptr);
  EXPECT_NE(io_env_from_spec("write:nth=1:errno=EIO"), nullptr);
  EXPECT_THROW(io_env_from_spec("bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Hardened IO helpers.

TEST(IoHelpers, InjectedErrnoSurfacesRichly) {
  TempDir dir("io-errno");
  const std::string path = (dir.path() / "f").string();
  FaultInjectingIoEnv env(FaultSchedule::parse("write:nth=1:errno=EIO"));
  const int fd = env.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const IoStatus status = io_write_all(env, fd, "hello", 5, "write(f)");
  EXPECT_EQ(status.err, EIO);
  EXPECT_NE(status.message().find("write(f)"), std::string::npos);
  EXPECT_NE(status.message().find("errno 5"), std::string::npos);
  EXPECT_EQ(env.injected_faults(), 1u);
  EXPECT_EQ(io_close(env, fd, "close(f)").err, 0);
}

TEST(IoHelpers, ShortWritesAreContinued) {
  TempDir dir("io-short");
  const std::string path = (dir.path() / "f").string();
  FaultInjectingIoEnv env(FaultSchedule::parse("write:every=1:short=0.25:count=6"));
  const int fd = env.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const std::string data(4096, 'x');
  std::size_t written = 0;
  const IoStatus status = io_write_all(env, fd, data.data(), data.size(), "write(f)", &written);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(written, data.size());
  EXPECT_GT(env.calls(IoOp::kWrite), 1u) << "the short writes must have forced continuation";
  io_close(env, fd, "close(f)");
  EXPECT_EQ(std::filesystem::file_size(path), data.size());
}

TEST(IoHelpers, EintrStormIsRetriedButCapped) {
  TempDir dir("io-eintr");
  const std::string path = (dir.path() / "f").string();
  {
    FaultInjectingIoEnv env(FaultSchedule::parse("write:every=1:errno=EINTR:count=10"));
    const int fd = env.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(io_write_all(env, fd, "payload", 7, "write(f)").ok())
        << "a bounded EINTR storm must be absorbed";
    io_close(env, fd, "close(f)");
    EXPECT_EQ(std::filesystem::file_size(path), 7u);
  }
  {
    // A persistent storm must give up instead of spinning forever.
    FaultInjectingIoEnv env(FaultSchedule::parse("write:every=1:errno=EINTR"));
    const int fd = env.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    const IoStatus status = io_write_all(env, fd, "payload", 7, "write(f)");
    EXPECT_EQ(status.err, EINTR);
    io_close(env, fd, "close(f)");
  }
}

// ---------------------------------------------------------------------------
// WAL hardening.

WalRecord simple_record(std::uint64_t seq) {
  WalRecord record;
  record.type = WalRecord::Type::kPlace;
  record.op_seq = seq;
  record.vm = seq;
  record.vm_type = seq % 3;
  record.pm = seq * 2;
  record.assignments.emplace_back(0, 1);
  return record;
}

TEST(ServiceWalFaults, EnospcFlushFailsRichlyAndRetryCompletesTheLog) {
  TempDir dir("wal-enospc");
  const auto path = dir.path() / "wal.log";
  FaultInjectingIoEnv env(FaultSchedule::parse("write:nth=1:errno=ENOSPC"));
  WalWriter writer(path, /*fsync_on_flush=*/false, &env);
  ASSERT_TRUE(writer.healthy());
  std::vector<WalRecord> records;
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    records.push_back(simple_record(seq));
    writer.append(records.back());
  }
  const IoStatus failed = writer.flush();
  EXPECT_EQ(failed.err, ENOSPC);
  EXPECT_NE(failed.message().find("wal.log"), std::string::npos);
  EXPECT_NE(failed.message().find("errno 28"), std::string::npos);

  // The disk recovers (rule expired): the retry must complete the log with
  // no torn or duplicated frames.
  ASSERT_TRUE(writer.flush().ok());
  bool torn = true;
  EXPECT_EQ(read_wal(path, &torn), records);
  EXPECT_FALSE(torn);
}

TEST(ServiceWalFaults, ShortWriteThenErrorResumesMidFrame) {
  TempDir dir("wal-short");
  const auto path = dir.path() / "wal.log";
  FaultInjectingIoEnv env(
      FaultSchedule::parse("write:nth=1:short=0.5;write:nth=2:errno=ENOSPC"));
  WalWriter writer(path, false, &env);
  std::vector<WalRecord> records;
  for (std::uint64_t seq = 1; seq <= 8; ++seq) {
    records.push_back(simple_record(seq));
    writer.append(records.back());
  }
  const IoStatus failed = writer.flush();
  EXPECT_EQ(failed.err, ENOSPC);
  EXPECT_GT(std::filesystem::file_size(path), 0u) << "the short write landed a prefix";

  // The retry must resume exactly at the unwritten suffix — mid-frame.
  ASSERT_TRUE(writer.flush().ok());
  bool torn = true;
  EXPECT_EQ(read_wal(path, &torn), records);
  EXPECT_FALSE(torn);
}

TEST(ServiceWalFaults, OpenFailureIsRecordedNotThrown) {
  TempDir dir("wal-open");
  FaultInjectingIoEnv env(FaultSchedule::parse("open:nth=1:errno=EACCES"));
  WalWriter writer(dir.path() / "wal.log", false, &env);
  EXPECT_FALSE(writer.healthy());
  EXPECT_EQ(writer.open_status().err, EACCES);
}

TEST(ServiceWalFaults, TruncateFailureSurfaces) {
  TempDir dir("wal-trunc");
  FaultInjectingIoEnv env(FaultSchedule::parse("ftruncate:nth=1:errno=EIO"));
  WalWriter writer(dir.path() / "wal.log", false, &env);
  writer.append(simple_record(1));
  ASSERT_TRUE(writer.flush().ok());
  const IoStatus status = writer.reset();
  EXPECT_EQ(status.err, EIO);
  ASSERT_TRUE(writer.reset().ok()) << "a later truncate retry succeeds";
}

// ---------------------------------------------------------------------------
// Snapshot atomicity under faults.

struct SnapshotFixture {
  Catalog catalog = ec2_catalog();
  Datacenter dc{catalog, mixed_pm_fleet(catalog, 4)};
  AdmissionController admission;
  GroupDirectory groups;

  SnapshotFixture() {
    Rng rng(0xfa);
    VmId next_vm = 1;
    for (int op = 0; op < 20; ++op) {
      const PmIndex pm = rng.uniform_index(dc.pm_count());
      const std::size_t type = rng.uniform_index(catalog.vm_types().size());
      const auto options = dc.placements(pm, type);
      if (options.empty()) continue;
      dc.place(pm, Vm{next_vm, type}, options.front());
      admission.record_placement(next_vm, op % 2 == 0 ? "g" : "", pm);
      ++next_vm;
    }
  }
};

TEST(ServiceSnapshotFaults, RenameFailureKeepsTheOldSnapshot) {
  TempDir dir("snap-rename");
  const auto path = dir.path() / "snapshot.bin";
  SnapshotFixture fx;
  ASSERT_TRUE(save_snapshot(path, fx.dc, fx.admission, fx.groups, 10).ok());

  FaultInjectingIoEnv env(FaultSchedule::parse("rename:nth=1:errno=EACCES"));
  const IoStatus failed = save_snapshot(path, fx.dc, fx.admission, fx.groups, 20, &env);
  EXPECT_EQ(failed.err, EACCES);
  auto loaded = load_snapshot(path, fx.catalog);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->last_op_seq, 10u) << "a failed rename must not promote the temp file";

  ASSERT_TRUE(save_snapshot(path, fx.dc, fx.admission, fx.groups, 20, &env).ok());
  EXPECT_EQ(load_snapshot(path, fx.catalog)->last_op_seq, 20u);
}

TEST(ServiceSnapshotFaults, FsyncFailurePreventsPromotion) {
  TempDir dir("snap-fsync");
  const auto path = dir.path() / "snapshot.bin";
  SnapshotFixture fx;
  FaultInjectingIoEnv env(FaultSchedule::parse("fsync:nth=1:errno=EIO"));
  const IoStatus failed = save_snapshot(path, fx.dc, fx.admission, fx.groups, 5, &env);
  EXPECT_EQ(failed.err, EIO);
  EXPECT_FALSE(load_snapshot(path, fx.catalog).has_value())
      << "an unsynced snapshot must never become the recovery source";
}

// ---------------------------------------------------------------------------
// Service degraded mode.

class ServiceFaultTest : public ::testing::Test {
 protected:
  ServiceFaultTest() : catalog_(ec2_catalog()), tables_(tables_for(catalog_)) {}

  std::unique_ptr<PlacementService> make_service(const std::filesystem::path& data_dir,
                                                 std::shared_ptr<IoEnv> env,
                                                 std::uint64_t snapshot_every = 0) {
    ServiceConfig config;
    config.data_dir = data_dir;
    config.snapshot_every_ops = snapshot_every;
    config.io_env = std::move(env);
    config.probe_initial_ms = 5;
    config.probe_max_ms = 40;
    config.degraded_retry_after_ms = 10.0;
    return std::make_unique<PlacementService>(catalog_, mixed_pm_fleet(catalog_, 24), tables_,
                                              std::move(config));
  }

  Request place_request(VmId vm, std::optional<std::size_t> type = std::nullopt) {
    Request request;
    request.op = RequestOp::kPlace;
    request.vm_id = vm;
    request.vm_type_index = type.value_or(vm % catalog_.vm_types().size());
    return request;
  }

  static std::string extra_of(const Response& response, const std::string& key) {
    for (const auto& [k, v] : response.extra) {
      if (k == key) return v;
    }
    return "";
  }

  /// Drives execute(stats) until the service's probe loop recovers storage.
  void wait_recovered(PlacementService& service, int timeout_ms = 3000) {
    Request stats;
    stats.op = RequestOp::kStats;
    for (int waited = 0; service.degraded() && waited < timeout_ms; waited += 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      service.execute(stats);  // execute() runs maybe_probe_storage()
    }
  }

  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
};

TEST_F(ServiceFaultTest, EnospcDegradesServesReadsThenProbeRecovers) {
  TempDir dir("svc-enospc");
  auto env = std::make_shared<FaultInjectingIoEnv>(
      FaultSchedule::parse("write:every=1:errno=ENOSPC:count=3"));
  auto service = make_service(dir.path(), env);

  // The first place is applied in memory but its WAL flush fails: the ack
  // must be demoted — acknowledged means durable, and this was not.
  const Response demoted = service->execute(place_request(1));
  EXPECT_FALSE(demoted.ok);
  EXPECT_EQ(demoted.error, "degraded_storage");
  ASSERT_TRUE(demoted.retry_after_ms.has_value());
  EXPECT_TRUE(service->degraded());

  // Subsequent mutations are rejected before touching the engine.
  const Response rejected = service->execute(place_request(2));
  EXPECT_EQ(rejected.error, "degraded_storage");

  // Reads keep serving while degraded, and health reports the mode.
  Request health;
  health.op = RequestOp::kHealth;
  const Response health_degraded = service->execute(health);
  EXPECT_TRUE(health_degraded.ok);
  EXPECT_EQ(extra_of(health_degraded, "mode"), "\"degraded\"");
  EXPECT_NE(extra_of(health_degraded, "last_error"), "");

  // The remaining fault budget is burned by probes; then recovery takes a
  // fresh snapshot covering the in-memory state and truncates the WAL.
  wait_recovered(*service);
  ASSERT_FALSE(service->degraded());
  const ServiceStats stats = service->stats();
  EXPECT_GE(stats.storage_probes, 1u);
  EXPECT_GE(stats.snapshots, 1u);
  EXPECT_EQ(stats.degraded_entries, 1u);
  EXPECT_GE(stats.io_errors, 1u);
  EXPECT_EQ(extra_of(service->execute(health), "mode"), "\"ok\"");

  // Writes are back and durable.
  const Response placed = service->execute(place_request(3));
  ASSERT_TRUE(placed.ok);

  // Differential check against a clean rebuild: the acked vm 3 must be
  // there; vm 1 (demoted but covered by the recovery snapshot) may be; the
  // pre-execution-rejected vm 2 must not.
  const Datacenter& pre = service->datacenter();
  auto recovered = make_service(dir.path(), nullptr);
  EXPECT_TRUE(datacenter_state_equal(pre, recovered->datacenter()));
  EXPECT_TRUE(recovered->datacenter().pm_of(3).has_value());
  EXPECT_FALSE(recovered->datacenter().pm_of(2).has_value());
}

TEST_F(ServiceFaultTest, BrokenWalAtBootDegradesInsteadOfDying) {
  TempDir dir("svc-boot");
  auto env = std::make_shared<FaultInjectingIoEnv>(
      FaultSchedule::parse("open:nth=1:errno=EROFS"));
  auto service = make_service(dir.path(), env);
  EXPECT_TRUE(service->degraded());
  EXPECT_EQ(service->execute(place_request(1)).error, "degraded_storage");

  wait_recovered(*service);
  ASSERT_FALSE(service->degraded());
  EXPECT_TRUE(service->execute(place_request(2)).ok);
  auto recovered = make_service(dir.path(), nullptr);
  EXPECT_TRUE(recovered->datacenter().pm_of(2).has_value());
}

TEST_F(ServiceFaultTest, LookupServesCurrentPlacement) {
  TempDir dir("svc-lookup");
  auto service = make_service(dir.path(), nullptr);
  const Response placed = service->execute(place_request(7));
  ASSERT_TRUE(placed.ok);

  Request lookup;
  lookup.op = RequestOp::kLookup;
  lookup.vm_id = 7;
  const Response found = service->execute(lookup);
  ASSERT_TRUE(found.ok);
  EXPECT_EQ(found.pm, placed.pm);

  lookup.vm_id = 99;
  EXPECT_EQ(service->execute(lookup).error, "unknown_vm");
}

TEST_F(ServiceFaultTest, WorkerDemotesBatchRecoversAndAckedOpsSurvive) {
  TempDir dir("svc-worker");
  auto env = std::make_shared<FaultInjectingIoEnv>(
      FaultSchedule::parse("write:after=2:errno=ENOSPC:count=4"));
  auto service = make_service(dir.path(), env, /*snapshot_every=*/10);
  service->start();

  std::vector<VmId> acked;
  std::size_t demoted = 0;
  for (VmId vm = 1; vm <= 40; ++vm) {
    const Response response = service->submit(place_request(vm)).get();
    if (response.ok) {
      acked.push_back(vm);
    } else if (response.error == "degraded_storage") {
      ASSERT_TRUE(response.retry_after_ms.has_value());
      ++demoted;
    } else {
      ASSERT_EQ(response.error, "no_capacity") << response.message;
    }
    // The worker probes on its own backoff timer; just pace the traffic.
    if (service->degraded()) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(demoted, 0u) << "the fault schedule must have bitten";

  // The worker must recover without any external nudge.
  for (int waited = 0; service->degraded() && waited < 3000; waited += 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(service->degraded());
  const Response late = service->submit(place_request(1000, 0)).get();
  ASSERT_TRUE(late.ok) << late.error;

  service->stop_now();  // kill -9 stand-in: recovery below sees only disk state
  auto recovered = make_service(dir.path(), nullptr);
  EXPECT_TRUE(recovered->stats().recovered);
  for (const VmId vm : acked) {
    EXPECT_TRUE(recovered->datacenter().pm_of(vm).has_value())
        << "acked vm " << vm << " lost across crash recovery";
  }
  EXPECT_TRUE(recovered->datacenter().pm_of(1000).has_value());
}

TEST_F(ServiceFaultTest, SnapshotFailureDuringPeriodicSnapshotDegrades) {
  TempDir dir("svc-snap");
  auto env = std::make_shared<FaultInjectingIoEnv>(
      FaultSchedule::parse("rename:nth=1:errno=EACCES"));
  auto service = make_service(dir.path(), env, /*snapshot_every=*/5);
  service->start();

  // The 5th mutating op triggers the periodic snapshot, whose rename fails:
  // some of these submits see degraded_storage while the worker recovers.
  for (VmId vm = 1; vm <= 12; ++vm) service->submit(place_request(vm)).get();

  // The rename rule expires after one fire, so the probe-driven recovery
  // snapshot goes through and writes resume; retry until the ack lands.
  Response late;
  for (int waited = 0; waited < 3000; waited += 10) {
    late = service->submit(place_request(100, 0)).get();
    if (late.ok || late.error != "degraded_storage") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(late.ok) << late.error << ": " << late.message;
  service->drain();
  const ServiceStats stats = service->stats();
  EXPECT_GE(stats.io_errors, 1u);
  EXPECT_GE(stats.degraded_entries, 1u);
  EXPECT_GE(stats.snapshots, 1u);
  EXPECT_FALSE(service->degraded());

  auto recovered = make_service(dir.path(), nullptr);
  EXPECT_TRUE(recovered->datacenter().pm_of(100).has_value());
}

}  // namespace
}  // namespace prvm
