#include "placement/assignment.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/rng.hpp"

namespace prvm {
namespace {

Catalog random_friendly_catalog() {
  // 4 cores x 4 levels + 8 memory levels; VM types with varied vCPU counts.
  std::vector<VmType> vms = {
      {"v1", 1, 1.0, 1.0, 0, 0.0},
      {"v2", 2, 1.0, 2.0, 0, 0.0},
      {"v3", 3, 2.0, 1.0, 0, 0.0},
      {"v4", 4, 1.0, 3.0, 0, 0.0},
  };
  std::vector<PmType> pms = {{"node", 4, 4.0, 8.0, 0, 0.0, "E5-2670"}};
  QuantizationConfig q;
  q.cpu_levels = 4;
  q.mem_levels = 8;
  return Catalog(std::move(vms), std::move(pms), q);
}

// Randomly fills a PM with VMs to create a varied usage state.
void random_fill(Datacenter& dc, Rng& rng, PmIndex pm, int attempts) {
  VmId next = 1000;
  for (int i = 0; i < attempts; ++i) {
    const std::size_t type = rng.uniform_index(dc.catalog().vm_types().size());
    auto options = dc.placements(pm, type);
    if (options.empty()) continue;
    dc.place(pm, Vm{next++, type}, options[rng.uniform_index(options.size())]);
  }
}

TEST(TightPlacement, FeasibilityCompleteOnRandomStates) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Datacenter dc(random_friendly_catalog(), {0});
    random_fill(dc, rng, 0, rng.uniform_int(0, 5));
    for (std::size_t type = 0; type < dc.catalog().vm_types().size(); ++type) {
      const bool enumerable = !dc.placements(0, type).empty();
      const auto tight = tight_placement(dc, 0, type);
      EXPECT_EQ(tight.has_value(), enumerable) << "trial " << trial << " type " << type;
      if (tight.has_value()) {
        // The returned placement must be applicable.
        EXPECT_NO_THROW(dc.place(0, Vm{9999, type}, *tight));
        dc.remove(9999);
      }
    }
  }
}

TEST(TightPlacement, PicksTightestDimension) {
  Datacenter dc(random_friendly_catalog(), {0});
  // Occupy core 0 with 3 levels via an explicit placement of type v3.
  const ProfileShape& shape = dc.shape_of(0);
  std::vector<int> levels(static_cast<std::size_t>(shape.total_dims()), 0);
  levels[0] = 2;
  levels[1] = 2;
  levels[2] = 2;
  levels[4] = 1;
  dc.place(0, Vm{1, 2}, DemandPlacement{{{0, 2}, {1, 2}, {2, 2}, {4, 1}},
                                        Profile::from_levels(shape, levels)});
  // A single-vCPU VM (1 level) must land on a used-but-fitting core (free 2)
  // rather than the empty core 3 (free 4).
  const auto tight = tight_placement(dc, 0, 0);
  ASSERT_TRUE(tight.has_value());
  int cpu_dim = -1;
  for (auto [dim, amount] : tight->assignments) {
    if (dim < 4) cpu_dim = dim;
  }
  EXPECT_GE(cpu_dim, 0);
  EXPECT_LT(cpu_dim, 3);  // one of the 2-used cores, not core 3
}

TEST(BalancedPlacement, PicksEmptiestDimension) {
  Datacenter dc(random_friendly_catalog(), {0});
  const ProfileShape& shape = dc.shape_of(0);
  std::vector<int> levels(static_cast<std::size_t>(shape.total_dims()), 0);
  levels[0] = 2;
  levels[1] = 1;
  levels[4] = 1;
  dc.place(0, Vm{1, 1},
           DemandPlacement{{{0, 2}, {1, 1}, {4, 1}}, Profile::from_levels(shape, levels)});
  const auto balanced = balanced_placement(dc, 0, 0);
  ASSERT_TRUE(balanced.has_value());
  int cpu_dim = -1;
  for (auto [dim, amount] : balanced->assignments) {
    if (dim < 4) cpu_dim = dim;
  }
  EXPECT_GE(cpu_dim, 2);  // an empty core
}

TEST(BalancedPlacement, FeasibilityCompleteOnRandomStates) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    Datacenter dc(random_friendly_catalog(), {0});
    random_fill(dc, rng, 0, rng.uniform_int(0, 6));
    for (std::size_t type = 0; type < dc.catalog().vm_types().size(); ++type) {
      const bool enumerable = !dc.placements(0, type).empty();
      EXPECT_EQ(balanced_placement(dc, 0, type).has_value(), enumerable)
          << "trial " << trial << " type " << type;
    }
  }
}

TEST(MinVariancePlacement, MatchesExhaustiveMinimum) {
  Rng rng(103);
  for (int trial = 0; trial < 100; ++trial) {
    Datacenter dc(random_friendly_catalog(), {0});
    random_fill(dc, rng, 0, rng.uniform_int(0, 5));
    for (std::size_t type = 0; type < dc.catalog().vm_types().size(); ++type) {
      const auto options = dc.placements(0, type);
      const auto chosen = min_variance_placement(dc, 0, type);
      EXPECT_EQ(chosen.has_value(), !options.empty());
      if (!chosen.has_value()) continue;
      double min_var = std::numeric_limits<double>::infinity();
      for (const auto& o : options) {
        min_var = std::min(min_var, o.result.variance(dc.shape_of(0)));
      }
      EXPECT_NEAR(chosen->result.variance(dc.shape_of(0)), min_var, 1e-12);
    }
  }
}

TEST(BalancedPlacement, MatchesExhaustiveMinVarianceWhenUnconstrained) {
  // With plenty of headroom (empty PM), greedy balance = exhaustive
  // min-variance (rearrangement-inequality argument in the header).
  Datacenter dc(random_friendly_catalog(), {0});
  for (std::size_t type = 0; type < dc.catalog().vm_types().size(); ++type) {
    const auto greedy = balanced_placement(dc, 0, type);
    const auto exact = min_variance_placement(dc, 0, type);
    ASSERT_TRUE(greedy.has_value());
    ASSERT_TRUE(exact.has_value());
    EXPECT_NEAR(greedy->result.variance(dc.shape_of(0)),
                exact->result.variance(dc.shape_of(0)), 1e-12);
  }
}

TEST(Placements, NeverFitVmTypeYieldsEmpty) {
  std::vector<VmType> vms = {{"small", 1, 1.0, 1.0, 0, 0.0},
                             {"monster", 1, 1.0, 100.0, 0, 0.0}};
  std::vector<PmType> pms = {{"node", 4, 4.0, 8.0, 0, 0.0, "E5-2670"},
                             {"big", 4, 4.0, 200.0, 0, 0.0, "E5-2670"}};
  Datacenter dc(Catalog(std::move(vms), std::move(pms)), {0});
  EXPECT_FALSE(tight_placement(dc, 0, 1).has_value());
  EXPECT_FALSE(balanced_placement(dc, 0, 1).has_value());
  EXPECT_FALSE(min_variance_placement(dc, 0, 1).has_value());
}

}  // namespace
}  // namespace prvm
