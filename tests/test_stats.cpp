#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace prvm {
namespace {

TEST(Stats, MeanOfConstants) {
  const std::vector<double> v{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(Stats, MeanSimple) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);  // classic textbook sample
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Stats, PercentileSingleSample) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 7.0);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
}

TEST(Stats, PercentileRejectsBadArgs) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101.0), std::invalid_argument);
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Stats, EmptyInputsThrow) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(stddev({}), std::invalid_argument);
  EXPECT_THROW(median({}), std::invalid_argument);
  EXPECT_THROW(dimension_variance({}), std::invalid_argument);
  EXPECT_THROW(Summary::of({}), std::invalid_argument);
}

TEST(Stats, DimensionVarianceMatchesPaperDefinition) {
  // Paper §III-B: profile [4,3,3,3] has utilization 13 and variance 0.75 /
  // 4... the paper's v = (1/m) sum (p_i - u/m)^2: for [4,3,3,3],
  // u/m = 3.25 and v = (0.5625 + 3*0.0625)/4 = 0.1875.
  const std::vector<double> p{4.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(dimension_variance(p), 0.1875);
}

TEST(Stats, DimensionVarianceOrderingOfPaperExample) {
  // §III-B compares [4,3,3,3] against [3,3,2,2]: the former has lower
  // variance (and higher utilization) yet is the worse profile — the whole
  // motivation. Verify the variance ordering the argument relies on.
  const std::vector<double> a{4.0, 3.0, 3.0, 3.0};
  const std::vector<double> b{3.0, 3.0, 2.0, 2.0};
  EXPECT_LT(dimension_variance(a), dimension_variance(b));
}

TEST(Stats, SummaryFields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = Summary::of(v);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p1, 1.99, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(Stats, SummaryOfSingleValue) {
  const std::vector<double> v{42.0};
  const Summary s = Summary::of(v);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.p1, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

}  // namespace
}  // namespace prvm
