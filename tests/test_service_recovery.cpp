// Crash-recovery tests: WAL framing (incl. torn tails and corruption),
// snapshot round trips, and the differential oracle — a service driven
// through a random op mix, hard-stopped, and rebuilt from disk must match
// the pre-crash ledger bit-identically (activation sequences, bucket
// membership, free-list, anti-collocation groups and all).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <unistd.h>

#include "cluster/catalog.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "service/io_env.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/wal.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

std::shared_ptr<const ScoreTableSet> tables_for(const Catalog& catalog) {
  // Default on-disk cache — shared across the per-test processes.
  return std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
}

/// A unique per-test scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("prvm-test-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

WalRecord sample_record(std::uint64_t seq) {
  WalRecord record;
  record.type = seq % 3 == 0   ? WalRecord::Type::kPlace
                : seq % 3 == 1 ? WalRecord::Type::kRelease
                               : WalRecord::Type::kMigrate;
  record.op_seq = seq;
  record.vm = seq * 7;
  record.vm_type = seq % 5;
  record.pm = seq * 3;
  record.from_pm = seq;
  if (seq % 2 == 0) record.group = "group-" + std::to_string(seq % 4);
  for (int d = 0; d < static_cast<int>(seq % 4); ++d) {
    record.assignments.emplace_back(d, static_cast<int>(seq % 9) + 1);
  }
  return record;
}

TEST(ServiceWal, RoundTripsRecordsExactly) {
  TempDir dir("wal-roundtrip");
  const auto path = dir.path() / "wal.log";
  std::vector<WalRecord> written;
  {
    WalWriter writer(path);
    for (std::uint64_t seq = 1; seq <= 20; ++seq) {
      written.push_back(sample_record(seq));
      writer.append(written.back());
    }
    writer.flush();
  }
  bool torn = true;
  EXPECT_EQ(read_wal(path, &torn), written);
  EXPECT_FALSE(torn);

  // Appending to an existing log preserves earlier records.
  {
    WalWriter writer(path);
    written.push_back(sample_record(21));
    writer.append(written.back());
    writer.flush();
  }
  EXPECT_EQ(read_wal(path), written);
}

TEST(ServiceWal, TornTailIsDiscardedCleanly) {
  TempDir dir("wal-torn");
  const auto path = dir.path() / "wal.log";
  std::vector<WalRecord> written;
  {
    WalWriter writer(path);
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      written.push_back(sample_record(seq));
      writer.append(written.back());
    }
    writer.flush();
  }
  // A kill -9 mid-write leaves a partial frame: simulate with half a record.
  const std::string next = encode_wal_record(sample_record(6));
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    const std::uint32_t len = static_cast<std::uint32_t>(next.size());
    os.write(reinterpret_cast<const char*>(&len), sizeof(len));
    os.write(next.data(), static_cast<std::streamsize>(next.size() / 2));
  }
  bool torn = false;
  EXPECT_EQ(read_wal(path, &torn), written);
  EXPECT_TRUE(torn);
}

TEST(ServiceWal, CorruptRecordStopsReplayBeforeIt) {
  TempDir dir("wal-corrupt");
  const auto path = dir.path() / "wal.log";
  std::vector<WalRecord> written;
  {
    WalWriter writer(path);
    for (std::uint64_t seq = 1; seq <= 8; ++seq) {
      written.push_back(sample_record(seq));
      writer.append(written.back());
    }
    writer.flush();
  }
  // Flip one payload byte of the last record: its CRC must reject it.
  const auto size = std::filesystem::file_size(path);
  {
    std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
    fs.seekp(static_cast<std::streamoff>(size - 3));
    char byte = 0;
    fs.read(&byte, 1);
    fs.seekp(static_cast<std::streamoff>(size - 3));
    byte = static_cast<char>(byte ^ 0x5a);
    fs.write(&byte, 1);
  }
  bool torn = false;
  const auto records = read_wal(path, &torn);
  EXPECT_TRUE(torn);
  written.pop_back();
  EXPECT_EQ(records, written);
}

TEST(ServiceSnapshot, RoundTripsDatacenterAndAdmissionState) {
  const Catalog catalog = ec2_catalog();
  Datacenter dc(catalog, mixed_pm_fleet(catalog, 6));
  AdmissionController admission;
  Rng rng(0x5a5a);
  VmId next_vm = 1;
  for (int op = 0; op < 60; ++op) {
    const PmIndex pm = rng.uniform_index(dc.pm_count());
    const std::size_t type = rng.uniform_index(catalog.vm_types().size());
    const auto options = dc.placements(pm, type);
    if (options.empty()) continue;
    const VmId vm = next_vm++;
    dc.place(pm, Vm{vm, type}, options[rng.uniform_index(options.size())]);
    const std::string group = op % 3 == 0 ? "g" + std::to_string(op % 2) : "";
    admission.record_placement(vm, group, pm);
    if (op % 7 == 0) {
      dc.remove(vm);
      admission.record_release(vm, pm);
    }
  }

  TempDir dir("snapshot");
  const auto path = dir.path() / "snapshot.bin";
  save_snapshot(path, dc, admission, GroupDirectory{}, /*last_op_seq=*/123);

  const auto loaded = load_snapshot(path, catalog);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->last_op_seq, 123u);
  ASSERT_TRUE(loaded->datacenter.has_value());
  EXPECT_TRUE(datacenter_state_equal(dc, *loaded->datacenter));
  EXPECT_TRUE(admission.state_equal(loaded->admission));
  EXPECT_EQ(datacenter_state_digest(dc), datacenter_state_digest(*loaded->datacenter));
  loaded->datacenter->check_index_invariants();

  EXPECT_FALSE(load_snapshot(dir.path() / "absent.bin", catalog).has_value());
}

class ServiceRecoveryTest : public ::testing::Test {
 protected:
  ServiceRecoveryTest() : catalog_(ec2_catalog()), tables_(tables_for(catalog_)) {}

  std::unique_ptr<PlacementService> make_service(const std::filesystem::path& data_dir,
                                                 std::uint64_t snapshot_every) {
    ServiceConfig config;
    config.data_dir = data_dir;
    config.snapshot_every_ops = snapshot_every;
    return std::make_unique<PlacementService>(catalog_, mixed_pm_fleet(catalog_, 8), tables_,
                                              std::move(config));
  }

  /// Drives `ops` random place/release/migrate requests. With `via_queue`
  /// they go through submit() against a running worker (exercising the
  /// batch-boundary snapshot path); otherwise execute() runs them inline.
  void churn(PlacementService& service, Rng& rng, int ops, std::vector<VmId>& live,
             VmId& next_vm, bool via_queue = false) {
    const auto run = [&](const Request& request) {
      return via_queue ? service.submit(request).get() : service.execute(request);
    };
    for (int op = 0; op < ops; ++op) {
      const int dice = rng.uniform_int(0, 99);
      Request request;
      if (dice < 55 || live.empty()) {
        request.op = RequestOp::kPlace;
        request.vm_id = next_vm++;
        request.vm_type_index = rng.uniform_index(catalog_.vm_types().size());
        if (rng.chance(0.3)) request.group = "g" + std::to_string(rng.uniform_int(0, 2));
        if (run(request).ok) live.push_back(request.vm_id);
      } else if (dice < 85) {
        const std::size_t pick = rng.uniform_index(live.size());
        request.op = RequestOp::kRelease;
        request.vm_id = live[pick];
        ASSERT_TRUE(run(request).ok);
        live[pick] = live.back();
        live.pop_back();
      } else {
        request.op = RequestOp::kMigrate;
        request.vm_id = live[rng.uniform_index(live.size())];
        run(request);  // failed migrates also mutate state — on purpose
      }
    }
  }

  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
};

TEST_F(ServiceRecoveryTest, RecoversBitIdenticalStateAfterHardStop) {
  Rng rng(0xdeadbeef);
  // Several randomized crash/recover cycles, with and without snapshots in
  // the mix (snapshot_every=17 forces mid-run snapshot + WAL truncation, so
  // recovery exercises the snapshot/WAL overlap and op_seq gating too).
  for (const std::uint64_t snapshot_every : {0ull, 17ull}) {
    TempDir dir("recovery-" + std::to_string(snapshot_every));
    std::vector<VmId> live;
    VmId next_vm = 1;
    Rng churn_rng = rng.fork(snapshot_every);

    auto service = make_service(dir.path(), snapshot_every);
    service->start();  // snapshots happen on the worker's batch boundaries
    churn(*service, churn_rng, 150, live, next_vm, /*via_queue=*/true);
    // Hard stop: no drain, no final snapshot. The WAL alone (plus any
    // mid-run snapshot) must reconstruct everything acknowledged.
    service->stop_now();

    const std::uint64_t digest = datacenter_state_digest(service->datacenter());
    const ServiceStats pre = service->stats();
    const Datacenter& pre_dc = service->datacenter();

    auto recovered = make_service(dir.path(), snapshot_every);
    const ServiceStats post = recovered->stats();
    EXPECT_TRUE(post.recovered);
    EXPECT_EQ(post.op_seq, pre.op_seq);
    ASSERT_TRUE(datacenter_state_equal(pre_dc, recovered->datacenter()));
    EXPECT_TRUE(service->admission().state_equal(recovered->admission()));
    EXPECT_EQ(datacenter_state_digest(recovered->datacenter()), digest);
    recovered->datacenter().check_index_invariants();

    // The recovered service keeps working — and a second crash/recover
    // cycle starting from recovered state is also exact.
    recovered->start();
    churn(*recovered, churn_rng, 100, live, next_vm, /*via_queue=*/true);
    recovered->stop_now();
    const std::uint64_t digest2 = datacenter_state_digest(recovered->datacenter());
    auto recovered2 = make_service(dir.path(), snapshot_every);
    ASSERT_TRUE(datacenter_state_equal(recovered->datacenter(), recovered2->datacenter()));
    EXPECT_EQ(datacenter_state_digest(recovered2->datacenter()), digest2);
  }
}

TEST_F(ServiceRecoveryTest, DrainTruncatesWalAndRecoversFromSnapshotAlone) {
  TempDir dir("drain");
  std::vector<VmId> live;
  VmId next_vm = 1;
  Rng rng(0xcafe);

  auto service = make_service(dir.path(), 0);
  churn(*service, rng, 80, live, next_vm);
  const std::uint64_t digest = datacenter_state_digest(service->datacenter());
  service->drain();  // final snapshot + WAL truncate

  EXPECT_EQ(std::filesystem::file_size(dir.path() / "wal.log"), 0u);

  auto recovered = make_service(dir.path(), 0);
  const ServiceStats stats = recovered->stats();
  EXPECT_TRUE(stats.recovered);
  EXPECT_EQ(stats.replayed_records, 0u) << "drain leaves nothing to replay";
  EXPECT_EQ(datacenter_state_digest(recovered->datacenter()), digest);
  EXPECT_TRUE(datacenter_state_equal(service->datacenter(), recovered->datacenter()));
}

TEST_F(ServiceRecoveryTest, AckedOpsSurviveCrashUnderStorageFaults) {
  // Differential oracle under fault injection: churn through a service whose
  // storage intermittently fails (degrade -> probe -> recover cycles), hard
  // stop it, and rebuild from disk with a clean environment. Every
  // acknowledged mutation must be reflected; ops answered degraded_storage
  // were never acknowledged, so either final state is allowed for them.
  TempDir dir("faulty-crash");
  ServiceConfig config;
  config.data_dir = dir.path();
  config.snapshot_every_ops = 13;
  config.probe_initial_ms = 5;
  config.probe_max_ms = 40;
  config.io_env = std::make_shared<FaultInjectingIoEnv>(FaultSchedule::parse(
      "write:every=9:errno=EIO:count=4;rename:nth=2:errno=ENOSPC;seed=11"));
  auto service = std::make_unique<PlacementService>(catalog_, mixed_pm_fleet(catalog_, 8),
                                                    tables_, config);
  service->start();

  Rng rng(0xfa17);
  std::vector<VmId> acked_live;       // place acked, no acked release since
  std::vector<VmId> acked_released;   // release acked
  std::unordered_set<VmId> limbo;     // some op on this vm went unacknowledged
  VmId next_vm = 1;
  for (int op = 0; op < 200; ++op) {
    Request request;
    const bool do_place = acked_live.empty() || rng.chance(0.6);
    if (do_place) {
      request.op = RequestOp::kPlace;
      request.vm_id = next_vm++;
      request.vm_type_index = rng.uniform_index(catalog_.vm_types().size());
    } else {
      const std::size_t pick = rng.uniform_index(acked_live.size());
      request.op = RequestOp::kRelease;
      request.vm_id = acked_live[pick];
      acked_live[pick] = acked_live.back();
      acked_live.pop_back();
    }
    const Response response = service->submit(request).get();
    if (response.ok) {
      if (do_place) acked_live.push_back(request.vm_id);
      else acked_released.push_back(request.vm_id);
    } else if (response.error == "degraded_storage") {
      limbo.insert(request.vm_id);
      // Pace the traffic so the probe loop gets a chance to recover.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    } else if (!do_place) {
      acked_live.push_back(request.vm_id);  // release refused; still placed
    }
  }
  service->stop_now();  // crash: no drain, no final snapshot

  config.io_env = nullptr;  // the disk is healthy again at next boot
  auto recovered = std::make_unique<PlacementService>(catalog_, mixed_pm_fleet(catalog_, 8),
                                                      tables_, config);
  EXPECT_TRUE(recovered->stats().recovered);
  for (const VmId vm : acked_live) {
    if (limbo.contains(vm)) continue;
    EXPECT_TRUE(recovered->datacenter().pm_of(vm).has_value())
        << "acked placement of vm " << vm << " lost";
  }
  for (const VmId vm : acked_released) {
    if (limbo.contains(vm)) continue;
    EXPECT_FALSE(recovered->datacenter().pm_of(vm).has_value())
        << "acked release of vm " << vm << " lost";
  }
  recovered->datacenter().check_index_invariants();
}

TEST_F(ServiceRecoveryTest, TornWalTailIsSurvived) {
  TempDir dir("torn");
  std::vector<VmId> live;
  VmId next_vm = 1;
  Rng rng(0xbead);

  auto service = make_service(dir.path(), 0);
  churn(*service, rng, 60, live, next_vm);
  const std::uint64_t digest = datacenter_state_digest(service->datacenter());
  service.reset();

  // Simulate a crash mid-append: garbage half-frame at the log's tail.
  {
    std::ofstream os(dir.path() / "wal.log", std::ios::binary | std::ios::app);
    const char garbage[] = {42, 0, 0, 0, 7};
    os.write(garbage, sizeof(garbage));
  }

  auto recovered = make_service(dir.path(), 0);
  EXPECT_TRUE(recovered->stats().wal_torn_tail);
  EXPECT_EQ(datacenter_state_digest(recovered->datacenter()), digest)
      << "unacknowledged torn tail must not change recovered state";
}

}  // namespace
}  // namespace prvm
