#include "testbed/testbed.hpp"

#include <gtest/gtest.h>

#include "placement/algorithm_factory.hpp"

namespace prvm {
namespace {

TEST(Link, TransferTimeIsLatencyPlusSerialization) {
  Link link{1.0, 0.5};  // 1 Gbps, 0.5 ms
  // 125000 bytes = 1 Mbit -> 1 ms serialization + 0.5 ms latency.
  EXPECT_NEAR(link.transfer_seconds(125000), 0.0015, 1e-12);
  EXPECT_NEAR(link.transfer_seconds(0), 0.0005, 1e-12);
}

TEST(StarNetwork, SendAccountsTwoHops) {
  StarNetwork net(3, Link{1.0, 0.5});
  const double t = net.send(0, 2, 125000);
  EXPECT_NEAR(t, 0.003, 1e-12);  // two hops
  EXPECT_EQ(net.total_bytes(), 125000u);
  EXPECT_EQ(net.total_messages(), 1u);
  EXPECT_NEAR(net.busy_seconds(), t, 1e-12);
}

TEST(StarNetwork, RoundTripAddsBothDirections) {
  StarNetwork net(2, Link{1.0, 0.5});
  const double t = net.round_trip(0, 1, 64, 256);
  EXPECT_EQ(net.total_messages(), 2u);
  EXPECT_EQ(net.total_bytes(), 320u);
  EXPECT_GT(t, 0.0);
}

TEST(StarNetwork, Validation) {
  EXPECT_THROW(StarNetwork(1, Link{}), std::invalid_argument);
  StarNetwork net(2, Link{});
  EXPECT_THROW(net.send(0, 0, 10), std::invalid_argument);
  EXPECT_THROW(net.send(0, 5, 10), std::invalid_argument);
  Link bad{0.0, 1.0};
  EXPECT_THROW(bad.transfer_seconds(1), std::invalid_argument);
}

TestbedOptions short_testbed(std::size_t scans) {
  TestbedOptions options;
  options.scans = scans;
  return options;
}

TEST(GeniController, RunsAndAccountsControlTraffic) {
  GeniExperimentConfig config;
  config.instances = 10;
  config.jobs = 20;
  config.seed = 3;
  config.options = short_testbed(30);
  const TestbedMetrics metrics = run_geni_experiment(AlgorithmKind::kFirstFit, config);
  EXPECT_GT(metrics.pms_used, 0u);
  EXPECT_LE(metrics.pms_used, 10u);
  EXPECT_EQ(metrics.rejected_jobs, 0u);
  // 30 scans x 10 instances polled, plus initial placement commands.
  EXPECT_GT(metrics.controller_traffic_mb, 0.0);
  EXPECT_GT(metrics.control_latency_seconds, 0.0);
}

TEST(GeniController, DeterministicForSameSeed) {
  GeniExperimentConfig config;
  config.instances = 8;
  config.jobs = 16;
  config.seed = 11;
  config.options = short_testbed(50);
  const TestbedMetrics a = run_geni_experiment(AlgorithmKind::kCompVm, config);
  const TestbedMetrics b = run_geni_experiment(AlgorithmKind::kCompVm, config);
  EXPECT_EQ(a.pms_used, b.pms_used);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.slo_violation_percent, b.slo_violation_percent);
}

TEST(GeniController, BusyJobsCauseMigrationsWithDowntime) {
  GeniExperimentConfig config;
  config.instances = 20;
  config.jobs = 60;
  config.seed = 5;
  config.options = short_testbed(400);
  const TestbedMetrics metrics = run_geni_experiment(AlgorithmKind::kFirstFit, config);
  // The busy Google-like job traces overload packed instances (cores with
  // all four vCPU slots taken run above the threshold when jobs spike).
  EXPECT_GT(metrics.overload_events, 0u);
  if (metrics.migrations > 0) {
    // Each kill/restart costs one scan interval of downtime.
    EXPECT_NEAR(metrics.job_downtime_seconds,
                metrics.migrations * config.options.scan_seconds, 1e-9);
  }
}

TEST(GeniController, OverCapacityJobsAreRejected) {
  GeniExperimentConfig config;
  config.instances = 2;   // 32 slots
  config.jobs = 40;       // far more than fits
  config.seed = 7;
  config.options = short_testbed(10);
  const TestbedMetrics metrics = run_geni_experiment(AlgorithmKind::kFfdSum, config);
  EXPECT_GT(metrics.rejected_jobs, 0u);
}

TEST(GeniController, PageRankVmRunsWithImplicitTables) {
  GeniExperimentConfig config;
  config.instances = 6;
  config.jobs = 10;
  config.seed = 13;
  config.options = short_testbed(20);
  // tables == nullptr: run_geni_experiment builds them.
  const TestbedMetrics metrics = run_geni_experiment(AlgorithmKind::kPageRankVm, config);
  EXPECT_GT(metrics.pms_used, 0u);
  EXPECT_EQ(metrics.rejected_jobs, 0u);
}

TEST(GeniController, SingleUseGuardAndValidation) {
  const Catalog catalog = geni_catalog();
  std::vector<Vm> jobs = {{0, 0}};
  TraceSet traces({UtilizationTrace(std::vector<double>(5, 0.5))});
  GeniController controller(Datacenter(catalog, {0, 0}), jobs, {0}, traces,
                            short_testbed(5));
  auto algorithm = make_algorithm(AlgorithmKind::kFirstFit);
  auto policy = default_policy_for(AlgorithmKind::kFirstFit);
  controller.run(*algorithm, *policy);
  EXPECT_THROW(controller.run(*algorithm, *policy), std::invalid_argument);

  EXPECT_THROW(GeniController(Datacenter(catalog, {0}), jobs, {}, traces, short_testbed(5)),
               std::invalid_argument);
  EXPECT_THROW(GeniController(Datacenter(catalog, {0}), jobs, {3}, traces, short_testbed(5)),
               std::invalid_argument);
}

}  // namespace
}  // namespace prvm
