// Sharded-cell subsystem tests (DESIGN.md §7): the GroupDirectory state
// machine, cell topology hashing, group-op protocol frames, the Router over
// embedded cells (hash routing, capacity spillover, the cross-cell
// reserve/commit saga), the sharded-vs-single differential oracle, home-cell
// crash recovery mid-reserve, and the socket cell channel.
#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include <unistd.h>

#include "cells/embedded.hpp"
#include "cells/group_directory.hpp"
#include "cells/topology.hpp"
#include "cluster/catalog.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "router/cell_channel.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/socket_server.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

std::shared_ptr<const ScoreTableSet> tables_for(const Catalog& catalog) {
  return std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("prvm-cells-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

Request place_request(std::uint64_t vm, std::size_t type, std::string group = "") {
  Request request;
  request.op = RequestOp::kPlace;
  request.vm_id = vm;
  request.vm_type_index = type;
  request.group = std::move(group);
  return request;
}

Request vm_request(RequestOp op, std::uint64_t vm) {
  Request request;
  request.op = op;
  request.vm_id = vm;
  return request;
}

/// The value of an `extra` member, or "" when absent.
std::string extra_of(const Response& response, const std::string& key) {
  for (const auto& [k, v] : response.extra) {
    if (k == key) return v;
  }
  return "";
}

// ---------------------------------------------------------------------------
// GroupDirectory state machine.

TEST(GroupDirectory, ReserveCommitAbortLifecycle) {
  GroupDirectory dir;
  EXPECT_EQ(dir.try_reserve("web", 7, /*now_ms=*/1000), RejectReason::kNone);
  dir.apply_reserve("web", 7, /*token=*/41, /*deadline_ms=*/6000);
  EXPECT_EQ(dir.member_count(), 1u);
  EXPECT_EQ(dir.pending_count(), 1u);

  // A live (unexpired) reservation blocks a second reserve of the same vm.
  EXPECT_EQ(dir.try_reserve("web", 7, 2000), RejectReason::kDuplicateVm);
  // Other vms and other groups are unaffected.
  EXPECT_EQ(dir.try_reserve("web", 8, 2000), RejectReason::kNone);
  EXPECT_EQ(dir.try_reserve("db", 7, 2000), RejectReason::kNone);

  EXPECT_EQ(dir.try_commit("web", 7, /*cell=*/2), RejectReason::kNone);
  dir.apply_commit("web", 7, 2);
  const GroupDirectory::Member* member = dir.member("web", 7);
  ASSERT_NE(member, nullptr);
  EXPECT_EQ(member->state, GroupDirectory::MemberState::kCommitted);
  EXPECT_EQ(member->cell, 2u);
  EXPECT_EQ(dir.pending_count(), 0u);

  // Commit is idempotent for the same cell; a different cell is the
  // double-placement a crashed saga could produce.
  EXPECT_EQ(dir.try_commit("web", 7, 2), RejectReason::kNone);
  EXPECT_EQ(dir.try_commit("web", 7, 3), RejectReason::kDuplicateVm);
  // A committed member also blocks re-reserve regardless of deadline.
  EXPECT_EQ(dir.try_reserve("web", 7, 999999), RejectReason::kDuplicateVm);

  dir.apply_abort("web", 7);
  EXPECT_EQ(dir.member("web", 7), nullptr);
  EXPECT_EQ(dir.try_reserve("web", 7, 999999), RejectReason::kNone);
  dir.apply_abort("web", 7);  // aborting an absent member is a no-op
  EXPECT_EQ(dir.member_count(), 0u);
}

TEST(GroupDirectory, ExpiryIsLazyAndPure) {
  GroupDirectory dir;
  dir.apply_reserve("g", 1, 10, /*deadline_ms=*/500);
  // Before the deadline the reservation holds; after, try_reserve treats it
  // as absent — but the entry itself is NOT dropped (replay determinism).
  EXPECT_EQ(dir.try_reserve("g", 1, 499), RejectReason::kDuplicateVm);
  EXPECT_EQ(dir.try_reserve("g", 1, 501), RejectReason::kNone);
  ASSERT_NE(dir.member("g", 1), nullptr) << "expiry must not mutate the directory";
  EXPECT_EQ(dir.pending_count(), 1u);

  // A fresh reserve overwrites the expired one (new token, new deadline).
  dir.apply_reserve("g", 1, 11, 9000);
  EXPECT_EQ(dir.member("g", 1)->token, 11u);
  EXPECT_EQ(dir.try_reserve("g", 1, 501), RejectReason::kDuplicateVm);
}

TEST(GroupDirectory, SerializeRoundTripsAllStates) {
  GroupDirectory dir;
  dir.apply_reserve("web", 1, 5, 1000);
  dir.apply_commit("web", 2, 3);
  dir.apply_reserve("db", 9, 6, 2000);
  dir.apply_commit("db", 9, 1);  // pending -> committed

  std::stringstream stream;
  dir.serialize(stream);
  const GroupDirectory loaded = GroupDirectory::deserialize(stream);
  EXPECT_TRUE(dir.state_equal(loaded));
  EXPECT_EQ(loaded.member_count(), 3u);
  EXPECT_EQ(loaded.pending_count(), 1u);
  ASSERT_NE(loaded.member("web", 1), nullptr);
  EXPECT_EQ(loaded.member("web", 1)->deadline_ms, 1000u);
  ASSERT_NE(loaded.member("db", 9), nullptr);
  EXPECT_EQ(loaded.member("db", 9)->cell, 1u);

  // Empty directory round-trips too (the common snapshot case).
  std::stringstream empty;
  GroupDirectory{}.serialize(empty);
  EXPECT_TRUE(GroupDirectory::deserialize(empty).state_equal(GroupDirectory{}));
  EXPECT_FALSE(loaded.state_equal(GroupDirectory{}));
}

// ---------------------------------------------------------------------------
// Topology.

TEST(CellTopology, HashingIsStableInRangeAndRoughlyUniform) {
  for (const std::size_t cells : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    std::vector<std::size_t> load(cells, 0);
    for (std::uint64_t vm = 0; vm < 4000; ++vm) {
      const std::size_t cell = cell_of_vm(vm, cells);
      ASSERT_LT(cell, cells);
      EXPECT_EQ(cell, cell_of_vm(vm, cells)) << "routing must be deterministic";
      ++load[cell];
    }
    for (const std::size_t count : load) {
      // Dense sequential vm ids must spread ~evenly (the mix64 finalizer's
      // whole job); allow a generous ±50% band around the mean.
      EXPECT_GT(count, 4000 / cells / 2) << cells << " cells";
      EXPECT_LT(count, 4000 / cells * 3 / 2) << cells << " cells";
    }
  }
  EXPECT_EQ(cell_of_group("web", 4), cell_of_group("web", 4));
  EXPECT_LT(cell_of_group("anything", 3), 3u);
  EXPECT_EQ(cell_of_vm(12345, 1), 0u);
}

TEST(CellTopology, SplitFleetIsARoundRobinPermutationPreservingMix) {
  const std::vector<std::size_t> fleet = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
  const auto slices = split_fleet(fleet, 3);
  ASSERT_EQ(slices.size(), 3u);
  std::vector<std::size_t> rejoined;
  for (const auto& slice : slices) {
    // Round-robin keeps slice sizes within one PM of even.
    EXPECT_GE(slice.size(), fleet.size() / 3);
    EXPECT_LE(slice.size(), fleet.size() / 3 + 1);
    rejoined.insert(rejoined.end(), slice.begin(), slice.end());
  }
  std::multiset<std::size_t> a(fleet.begin(), fleet.end());
  std::multiset<std::size_t> b(rejoined.begin(), rejoined.end());
  EXPECT_EQ(a, b) << "the slices must be a permutation of the fleet";
  // Each slice keeps both PM types (the alternating mix survives the split).
  for (const auto& slice : slices) {
    EXPECT_NE(std::count(slice.begin(), slice.end(), 0), 0);
    EXPECT_NE(std::count(slice.begin(), slice.end(), 1), 0);
  }
}

// ---------------------------------------------------------------------------
// Protocol: group ops and request round-trips.

TEST(CellProtocol, ParsesGroupOps) {
  const auto reserve = parse_request(R"({"op":"gres","group":"web","vm":7})");
  const Request* request = std::get_if<Request>(&reserve);
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->op, RequestOp::kGroupReserve);
  EXPECT_EQ(request->group, "web");
  EXPECT_EQ(request->vm_id, 7u);

  const auto commit = parse_request(R"({"op":"gcommit","group":"web","vm":7,"cell":2})");
  const Request* creq = std::get_if<Request>(&commit);
  ASSERT_NE(creq, nullptr);
  EXPECT_EQ(creq->op, RequestOp::kGroupCommit);
  ASSERT_TRUE(creq->cell.has_value());
  EXPECT_EQ(*creq->cell, 2u);

  const auto abort_parsed = parse_request(R"({"op":"gabort","group":"web","vm":7})");
  ASSERT_NE(std::get_if<Request>(&abort_parsed), nullptr);
  EXPECT_EQ(std::get_if<Request>(&abort_parsed)->op, RequestOp::kGroupAbort);

  // A group op without its group is a structured error, not a default.
  const auto missing = parse_request(R"({"op":"gres","vm":7})");
  const ProtocolError* error = std::get_if<ProtocolError>(&missing);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, "missing_field");
}

TEST(CellProtocol, EncodeRequestRoundTripsEveryOp) {
  std::vector<Request> requests;
  requests.push_back(place_request(7, 2, "web"));
  requests.push_back(place_request(8, 0));
  requests.push_back(vm_request(RequestOp::kRelease, 3));
  requests.push_back(vm_request(RequestOp::kMigrate, 4));
  requests.push_back(vm_request(RequestOp::kLookup, 5));
  for (const RequestOp op :
       {RequestOp::kStats, RequestOp::kHealth, RequestOp::kMetrics, RequestOp::kDrain}) {
    Request request;
    request.op = op;
    requests.push_back(request);
  }
  {
    Request request;
    request.op = RequestOp::kGroupReserve;
    request.vm_id = 9;
    request.group = "g \"quoted\"";
    requests.push_back(request);
    request.op = RequestOp::kGroupCommit;
    request.cell = 3;
    requests.push_back(request);
    request.op = RequestOp::kGroupAbort;
    request.cell.reset();
    requests.push_back(request);
  }
  // Type-by-name survives too (the router forwards requests it never built).
  Request by_name;
  by_name.op = RequestOp::kPlace;
  by_name.vm_id = 11;
  by_name.vm_type_name = "m3.xlarge";
  requests.push_back(by_name);

  for (const Request& request : requests) {
    const std::string line = encode_request(request);
    ASSERT_EQ(line.back(), '\n');
    const auto parsed = parse_request(std::string_view(line).substr(0, line.size() - 1));
    const Request* round = std::get_if<Request>(&parsed);
    ASSERT_NE(round, nullptr) << line;
    EXPECT_EQ(round->op, request.op) << line;
    EXPECT_EQ(round->vm_id, request.vm_id) << line;
    EXPECT_EQ(round->vm_type_index, request.vm_type_index) << line;
    EXPECT_EQ(round->vm_type_name, request.vm_type_name) << line;
    EXPECT_EQ(round->group, request.group) << line;
    EXPECT_EQ(round->cell, request.cell) << line;
  }
}

// ---------------------------------------------------------------------------
// Router over embedded cells.

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : catalog_(ec2_catalog()), tables_(tables_for(catalog_)) {}

  /// N started cells over `fleet` PMs, no data dirs (ephemeral).
  std::unique_ptr<EmbeddedCells> make_cells(std::size_t cells, std::size_t fleet,
                                            const std::filesystem::path& data_dir = {}) {
    EmbeddedCellsConfig config;
    config.cells = cells;
    config.data_dir = data_dir;
    auto embedded = std::make_unique<EmbeddedCells>(
        catalog_, mixed_pm_fleet(catalog_, fleet), tables_, config);
    embedded->start();
    return embedded;
  }

  Response call(Router& router, Request request) {
    return router.submit(std::move(request)).get();
  }

  std::uint64_t counter(const Router& router, const char* name) {
    const obs::Counter* c = router.metrics_registry().find_counter(name);
    return c != nullptr ? c->value() : 0;
  }

  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
};

TEST_F(RouterTest, RoutesVmOpsAndMergesFanouts) {
  auto embedded = make_cells(2, 8);
  Router router(embedded->sinks());

  // Place a handful of VMs; each response reports its owning cell and the
  // router must route every follow-up op for that vm to the same cell.
  for (std::uint64_t vm = 1; vm <= 10; ++vm) {
    const Response placed = call(router, place_request(vm, vm % 2));
    ASSERT_TRUE(placed.ok) << placed.error;
    const std::string cell = extra_of(placed, "cell");
    ASSERT_FALSE(cell.empty());
    EXPECT_EQ(cell, std::to_string(*router.cell_of(vm)));

    const Response looked = call(router, vm_request(RequestOp::kLookup, vm));
    ASSERT_TRUE(looked.ok);
    EXPECT_EQ(looked.pm, placed.pm) << "lookup must hit the owning cell";
  }
  // Ops for unknown vms stay structured.
  EXPECT_EQ(call(router, vm_request(RequestOp::kRelease, 999)).error, "unknown_vm");
  EXPECT_EQ(call(router, vm_request(RequestOp::kLookup, 999)).error, "unknown_vm");

  // Migrate keeps the vm known; release forgets it.
  const Response migrated = call(router, vm_request(RequestOp::kMigrate, 1));
  ASSERT_TRUE(migrated.ok) << migrated.error;
  ASSERT_TRUE(call(router, vm_request(RequestOp::kRelease, 1)).ok);
  EXPECT_EQ(call(router, vm_request(RequestOp::kLookup, 1)).error, "unknown_vm");
  EXPECT_FALSE(router.cell_of(1).has_value());

  // stats fans out to every cell and sums the counters.
  const Response stats = call(router, Request{});
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(extra_of(stats, "cells"), "2");
  EXPECT_EQ(extra_of(stats, "placed"), "10");
  EXPECT_EQ(extra_of(stats, "released"), "1");
  EXPECT_EQ(extra_of(stats, "migrated"), "1");
  EXPECT_EQ(extra_of(stats, "vm_count"), "9");

  // health merges to the worst mode and reports the router role.
  Request health;
  health.op = RequestOp::kHealth;
  const Response merged = call(router, health);
  ASSERT_TRUE(merged.ok);
  EXPECT_EQ(extra_of(merged, "mode"), "\"ok\"");
  EXPECT_EQ(extra_of(merged, "role"), "\"router\"");
  EXPECT_EQ(extra_of(merged, "cells"), "2");
  EXPECT_EQ(extra_of(merged, "cells_unreachable"), "0");

  EXPECT_GE(counter(router, "prvm_router_requests_total"), 16u);
  EXPECT_GE(counter(router, "prvm_router_fanout_requests_total"), 2u);
  embedded->stop_now();
}

TEST_F(RouterTest, SpillsOverWhenTheHomeCellIsFullAndRejectsWhenAllAre) {
  // Two cells of ONE PM each: the smallest sharded deployment where the
  // hash target can be full while the fleet still has room.
  auto embedded = make_cells(2, 2);
  Router router(embedded->sinks());

  // Keep placing vms that all hash to cell 0. Cell 0 must fill first, after
  // which every placement can only succeed by spilling to cell 1; when both
  // are full the reject is the ordinary structured no_capacity.
  std::uint64_t vm = 0;
  bool spilled = false;
  std::size_t accepted = 0;
  std::string final_error;
  while (final_error.empty() && vm < 100000) {
    ++vm;
    if (cell_of_vm(vm, 2) != 0) continue;
    const Response response = call(router, place_request(vm, 0));
    if (response.ok) {
      ++accepted;
      if (extra_of(response, "cell") == "1") spilled = true;
    } else {
      final_error = response.error;
    }
  }
  EXPECT_TRUE(spilled) << "placements must spill to the non-home cell";
  EXPECT_EQ(final_error, "no_capacity");
  EXPECT_GT(accepted, 0u);
  EXPECT_GE(counter(router, "prvm_router_spillover_total"), 1u);

  // Both cells really are in use: the merged stats see two used PMs.
  const Response stats = call(router, Request{});
  EXPECT_EQ(extra_of(stats, "used_pms"), "2");
  embedded->stop_now();
}

TEST_F(RouterTest, GroupedSagaSpansCellsWithoutDoublePlacement) {
  auto embedded = make_cells(2, 12);
  Router router(embedded->sinks());

  // Four members of one anti-collocation group; the reserve/commit saga must
  // land each on a globally distinct (cell, pm) pair.
  std::set<std::pair<std::string, std::uint64_t>> sites;
  for (std::uint64_t vm = 1; vm <= 4; ++vm) {
    const Response placed = call(router, place_request(vm, 0, "web"));
    ASSERT_TRUE(placed.ok) << placed.error << ": " << placed.message;
    ASSERT_TRUE(placed.pm.has_value());
    EXPECT_TRUE(sites.emplace(extra_of(placed, "cell"), *placed.pm).second)
        << "group members must never share a PM";
  }

  // A duplicate member is vetoed by the home cell's directory, not placed.
  EXPECT_EQ(call(router, place_request(2, 0, "web")).error, "duplicate_vm");

  // The home cell holds all four committed memberships and no pendings
  // (every gcommit landed).
  PlacementService& home = embedded->cell(cell_of_group("web", 2));
  EXPECT_EQ(home.group_directory().member_count(), 4u);
  EXPECT_EQ(home.group_directory().pending_count(), 0u);

  // Releasing a member aborts its membership at the home cell, making the
  // vm id placeable in the group again.
  ASSERT_TRUE(call(router, vm_request(RequestOp::kRelease, 2)).ok);
  EXPECT_EQ(home.group_directory().member_count(), 3u);
  const Response replaced = call(router, place_request(2, 0, "web"));
  ASSERT_TRUE(replaced.ok) << replaced.error;
  EXPECT_EQ(home.group_directory().member_count(), 4u);

  EXPECT_GE(counter(router, "prvm_router_group_reserves_total"), 5u);
  EXPECT_GE(counter(router, "prvm_router_group_commits_total"), 5u);
  EXPECT_GE(counter(router, "prvm_router_group_aborts_total"), 1u);
  embedded->stop_now();
}

// ---------------------------------------------------------------------------
// Sharded vs single-cell differential.

TEST_F(RouterTest, ShardedMatchesSingleCellOnRandomSpanningGroupSequences) {
  // With capacity to spare, a sharded deployment must accept and reject
  // EXACTLY the same requests as one big cell: the only rejects left are
  // duplicate_vm / unknown_vm / group vetoes, all capacity-independent.
  // Placements (which pm) legitimately differ — the fleets differ.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    ServiceConfig single_config;
    PlacementService single(catalog_, mixed_pm_fleet(catalog_, 40), tables_,
                            single_config);
    single.start();
    auto embedded = make_cells(3, 40);
    Router router(embedded->sinks());

    Rng rng(seed);
    const std::vector<std::string> groups = {"", "", "web", "db", "cache"};
    std::vector<std::uint64_t> live;
    std::uint64_t next_vm = 1;
    for (int op = 0; op < 250; ++op) {
      Request request;
      const std::size_t dice = rng.uniform_index(10);
      if (dice < 6 || live.empty()) {
        const bool duplicate = !live.empty() && rng.chance(0.1);
        const std::uint64_t vm =
            duplicate ? live[rng.uniform_index(live.size())] : next_vm++;
        request = place_request(vm, rng.uniform_index(catalog_.vm_types().size()),
                                groups[rng.uniform_index(groups.size())]);
      } else if (dice < 8) {
        const std::size_t pick = rng.uniform_index(live.size());
        request = vm_request(RequestOp::kRelease, live[pick]);
      } else {
        request = vm_request(RequestOp::kMigrate, live[rng.uniform_index(live.size())]);
      }

      const Response expected = single.execute(request);
      const Response actual = router.submit(request).get();
      ASSERT_EQ(actual.ok, expected.ok)
          << "seed " << seed << " op " << op << " " << to_string(request.op) << " vm "
          << request.vm_id << " group '" << request.group << "': single says '"
          << expected.error << "', sharded says '" << actual.error << "' ("
          << actual.message << ")";
      EXPECT_EQ(actual.error, expected.error) << "seed " << seed << " op " << op;
      ASSERT_NE(expected.error, "no_capacity")
          << "fleet too small for the oracle to be exact; grow it";

      if (request.op == RequestOp::kPlace && expected.ok) {
        live.push_back(request.vm_id);
      } else if (request.op == RequestOp::kRelease && expected.ok) {
        live.erase(std::find(live.begin(), live.end(), request.vm_id));
      }
    }
    // Both deployments end with the same live population.
    const Response single_stats = single.execute(Request{});
    const Response sharded_stats = router.submit(Request{}).get();
    EXPECT_EQ(extra_of(sharded_stats, "vm_count"), extra_of(single_stats, "vm_count"))
        << "seed " << seed;
    EXPECT_EQ(extra_of(sharded_stats, "placed"), extra_of(single_stats, "placed"));
    EXPECT_EQ(extra_of(sharded_stats, "rejected"), extra_of(single_stats, "rejected"));
    embedded->stop_now();
    single.stop_now();
  }
}

// ---------------------------------------------------------------------------
// Crash recovery.

TEST_F(RouterTest, HomeCellCrashMidReserveRecoversThePendingReservation) {
  TempDir dir("midreserve");
  ServiceConfig config;
  config.data_dir = dir.path();
  config.cell_id = 0;

  GroupDirectory pre_crash;
  {
    PlacementService cell(catalog_, mixed_pm_fleet(catalog_, 4), tables_, config);
    Request reserve;
    reserve.op = RequestOp::kGroupReserve;
    reserve.group = "web";
    reserve.vm_id = 7;
    ASSERT_TRUE(cell.execute(reserve).ok);
    // Commit a second member fully, so recovery must reproduce BOTH states.
    reserve.vm_id = 8;
    ASSERT_TRUE(cell.execute(reserve).ok);
    Request commit;
    commit.op = RequestOp::kGroupCommit;
    commit.group = "web";
    commit.vm_id = 8;
    commit.cell = 1;
    ASSERT_TRUE(cell.execute(commit).ok);
    pre_crash = cell.group_directory();
    cell.stop_now();  // SIGKILL-equivalent: no drain, no snapshot
  }

  PlacementService recovered(catalog_, mixed_pm_fleet(catalog_, 4), tables_, config);
  EXPECT_TRUE(recovered.stats().recovered);
  EXPECT_TRUE(recovered.group_directory().state_equal(pre_crash))
      << "WAL replay must reproduce the directory bit-identically";
  EXPECT_EQ(recovered.group_directory().pending_count(), 1u);

  // The recovered reservation still vetoes a duplicate, and the saga can
  // complete against the recovered cell.
  Request reserve;
  reserve.op = RequestOp::kGroupReserve;
  reserve.group = "web";
  reserve.vm_id = 7;
  EXPECT_EQ(recovered.execute(reserve).error, "duplicate_vm");
  Request commit;
  commit.op = RequestOp::kGroupCommit;
  commit.group = "web";
  commit.vm_id = 7;
  commit.cell = 0;
  EXPECT_TRUE(recovered.execute(commit).ok);
  EXPECT_EQ(recovered.group_directory().pending_count(), 0u);
  recovered.stop_now();
}

TEST_F(RouterTest, AllCellsRecoverToThePreCrashStateAfterHardStop) {
  TempDir dir("cellcrash");
  std::vector<std::uint64_t> digests;
  std::vector<GroupDirectory> directories;
  {
    auto embedded = make_cells(2, 12, dir.path());
    Router router(embedded->sinks());
    for (std::uint64_t vm = 1; vm <= 12; ++vm) {
      const std::string group = vm % 3 == 0 ? "web" : (vm % 3 == 1 ? "" : "db");
      ASSERT_TRUE(call(router, place_request(vm, vm % 2, group)).ok);
    }
    ASSERT_TRUE(call(router, vm_request(RequestOp::kRelease, 3)).ok);
    for (std::size_t k = 0; k < embedded->size(); ++k) {
      digests.push_back(datacenter_state_digest(embedded->cell(k).datacenter()));
      directories.push_back(embedded->cell(k).group_directory());
    }
    embedded->stop_now();  // every cell dies with a dirty WAL
  }
  {
    auto embedded = make_cells(2, 12, dir.path());
    for (std::size_t k = 0; k < embedded->size(); ++k) {
      EXPECT_TRUE(embedded->cell(k).stats().recovered) << "cell " << k;
      EXPECT_EQ(datacenter_state_digest(embedded->cell(k).datacenter()), digests[k])
          << "cell " << k;
      EXPECT_TRUE(embedded->cell(k).group_directory().state_equal(directories[k]))
          << "cell " << k;
    }
    // The recovered deployment keeps serving: routing state rebuilt from
    // scratch, the fleet still accepts placements.
    Router router(embedded->sinks());
    EXPECT_TRUE(call(router, place_request(100, 0)).ok);
    embedded->stop_now();
  }
}

// ---------------------------------------------------------------------------
// Socket cell channel.

TEST_F(RouterTest, SocketChannelRoundTripsAndFailsFastWhenTheCellDies) {
  TempDir dir("channel");
  const std::string socket_path = (dir.path() / "cell.sock").string();
  ServiceConfig config;
  config.cell_id = 3;
  PlacementService cell(catalog_, mixed_pm_fleet(catalog_, 4), tables_, config);
  cell.start();
  SocketServerConfig socket_config;
  socket_config.unix_path = socket_path;
  SocketServer server(cell, socket_config);
  server.start();

  auto channel = std::make_unique<SocketCellChannel>(socket_path);
  ASSERT_TRUE(channel->connected());
  const Response placed = channel->submit(place_request(1, 0)).get();
  ASSERT_TRUE(placed.ok) << placed.error;
  EXPECT_EQ(placed.vm, 1u);

  // Pipelined requests come back in order with extras intact.
  auto f1 = channel->submit(vm_request(RequestOp::kLookup, 1));
  Request health;
  health.op = RequestOp::kHealth;
  auto f2 = channel->submit(health);
  const Response looked = f1.get();
  EXPECT_EQ(looked.pm, placed.pm);
  const Response healthy = f2.get();
  EXPECT_TRUE(healthy.ok);
  EXPECT_EQ(extra_of(healthy, "cell_id"), "3");
  EXPECT_EQ(extra_of(healthy, "role"), "\"cell\"");

  // Kill the cell's server: in-flight and future submits must fail with the
  // structured transport error, never hang.
  server.stop();
  Response dead = channel->submit(place_request(2, 0)).get();
  for (int attempt = 0; dead.error.empty() && attempt < 100; ++attempt) {
    dead = channel->submit(place_request(2, 0)).get();
  }
  EXPECT_EQ(dead.error, kCellUnreachable);
  EXPECT_FALSE(dead.ok);
  cell.stop_now();

  // A router over a dead channel degrades structurally too.
  std::vector<RequestSink*> sinks = {channel.get()};
  Router router(sinks);
  EXPECT_EQ(call(router, place_request(5, 0)).error, kCellUnreachable);
  Request merged_health;
  merged_health.op = RequestOp::kHealth;
  const Response merged = call(router, merged_health);
  EXPECT_TRUE(merged.ok);
  EXPECT_EQ(extra_of(merged, "cells_unreachable"), "1");
  EXPECT_EQ(extra_of(merged, "mode"), "\"degraded\"");
  EXPECT_GE(counter(router, "prvm_router_cell_unreachable_total"), 1u);
}

}  // namespace
}  // namespace prvm
