#include "core/score_table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace prvm {
namespace {

ProfileShape paper_shape() {
  return ProfileShape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
}

ProfileGraph paper_graph() {
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1, 1}}},
                                          QuantizedDemand{{{1, 1, 1, 1}}}};
  return ProfileGraph(paper_shape(), std::move(demands));
}

double score_of(const ScoreTable& table, const ProfileShape& shape, std::vector<int> levels) {
  const auto s =
      table.find(Profile::from_levels(shape, std::move(levels)).canonical(shape).pack(shape));
  EXPECT_TRUE(s.has_value());
  return s.value_or(-1.0);
}

TEST(ScoreTable, PaperQualityOrderingSection5A) {
  // §V-A: "[3,3,3,3] has higher quality than profile [4,4,2,2], because it
  // is easier for [3,3,3,3] to develop to the best profile".
  const ProfileGraph g = paper_graph();
  const ScoreTable table = ScoreTable::build(g);
  const ProfileShape shape = paper_shape();
  EXPECT_GT(score_of(table, shape, {3, 3, 3, 3}), score_of(table, shape, {4, 4, 2, 2}));
}

TEST(ScoreTable, BestProfileHasMaximumScore) {
  const ProfileGraph g = paper_graph();
  const ScoreTable table = ScoreTable::build(g);
  const ProfileShape shape = paper_shape();
  EXPECT_DOUBLE_EQ(score_of(table, shape, {4, 4, 4, 4}), 1.0);  // normalized max
}

TEST(ScoreTable, DeadEndsScoreLowerThanLiveSiblings) {
  const ProfileGraph g = paper_graph();
  const ScoreTable table = ScoreTable::build(g);
  const ProfileShape shape = paper_shape();
  // [4,4,4,0] (dead-end sink, util .75) must score below [4,4,2,2] (still
  // on a path to best at util .75... [4,4,2,2] util is also 12/16).
  EXPECT_LT(score_of(table, shape, {4, 4, 4, 0}), score_of(table, shape, {4, 4, 2, 2}));
}

TEST(ScoreTable, ForwardAsPrintedInvertsThePaperExample) {
  // Documents the Algorithm-1-as-printed inconsistency (see VoteDirection):
  // with forward votes, [4,4,2,2] outranks [3,3,3,3].
  ScoreTableOptions options;
  options.direction = VoteDirection::kForwardAsPrinted;
  const ProfileGraph g = paper_graph();
  const ScoreTable table = ScoreTable::build(g, options);
  const ProfileShape shape = paper_shape();
  EXPECT_GT(score_of(table, shape, {4, 4, 2, 2}), score_of(table, shape, {3, 3, 3, 3}));
}

TEST(ScoreTable, ScoresAreNonNegativeAndFinite) {
  const ProfileGraph g = paper_graph();
  const ScoreTable table = ScoreTable::build(g);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto s = table.find(g.key_of(u));
    ASSERT_TRUE(s.has_value());
    EXPECT_GE(*s, 0.0);
    EXPECT_LE(*s, 1.0 + 1e-6);
  }
  EXPECT_TRUE(table.pagerank_converged());
  EXPECT_GT(table.pagerank_iterations(), 1);
}

TEST(ScoreTable, FindOnUnknownProfile) {
  const ProfileGraph g = paper_graph();
  const ScoreTable table = ScoreTable::build(g);
  const ProfileShape shape = paper_shape();
  const ProfileKey odd = Profile::from_levels(shape, {4, 3, 3, 3}).pack(shape);
  EXPECT_FALSE(table.find(odd).has_value());
  EXPECT_THROW(table.score(odd), std::invalid_argument);
}

TEST(ScoreTable, BestAfterMatchesManualEnumeration) {
  const ProfileGraph g = paper_graph();
  const ScoreTable table = ScoreTable::build(g);
  const ProfileShape shape = paper_shape();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const Profile p = g.profile_of(u);
    for (std::size_t t = 0; t < g.demands().size(); ++t) {
      double manual_best = -1.0;
      for (ProfileKey succ : enumerate_successor_keys(shape, p, g.demands()[t])) {
        manual_best = std::max(manual_best, table.score(succ));
      }
      const auto cached = table.best_after(g.key_of(u), t);
      if (manual_best < 0.0) {
        EXPECT_FALSE(cached.has_value());
      } else {
        ASSERT_TRUE(cached.has_value());
        EXPECT_NEAR(cached->score, manual_best, 1e-6);
        EXPECT_NEAR(table.score(cached->successor), manual_best, 1e-6);
      }
    }
  }
}

TEST(ScoreTable, BestAfterOnFullProfileIsEmpty) {
  const ProfileGraph g = paper_graph();
  const ScoreTable table = ScoreTable::build(g);
  const ProfileShape shape = paper_shape();
  const ProfileKey best = best_profile(shape).pack(shape);
  EXPECT_FALSE(table.best_after(best, 0).has_value());
  EXPECT_FALSE(table.best_after(best, 1).has_value());
  EXPECT_THROW(table.best_after(best, 2), std::invalid_argument);
}

TEST(ScoreTable, ReverseDirectionZeroesDeadEndCones) {
  // In kReverseToBest mode no backward walk from the best profile ever
  // reaches a profile whose forward cone misses the best profile, so such
  // profiles score (numerically) zero even before the BPRU discount.
  const ProfileGraph g = paper_graph();
  const ScoreTable table = ScoreTable::build(g);
  const ProfileShape shape = paper_shape();
  const ProfileKey dead_end = Profile::from_levels(shape, {4, 4, 4, 0}).pack(shape);
  EXPECT_DOUBLE_EQ(table.score(dead_end), 0.0);
}

TEST(ScoreTable, WithoutBpruDeadEndsRankHigherInForwardMode) {
  // BPRU (Algorithm 1 line 19) is what discounts dead ends under the
  // literal forward voting, where they otherwise accumulate rank.
  ScoreTableOptions with;
  with.direction = VoteDirection::kForwardAsPrinted;
  ScoreTableOptions without = with;
  without.apply_bpru = false;
  const ProfileGraph g = paper_graph();
  const ScoreTable table_with = ScoreTable::build(g, with);
  const ScoreTable table_without = ScoreTable::build(g, without);
  const ProfileShape shape = paper_shape();
  // [4,4,4,0]: a sink at utilization 0.75 -> BPRU multiplies its rank by
  // 0.75, so relative to the no-discount table it must drop.
  const ProfileKey dead_end = Profile::from_levels(shape, {4, 4, 4, 0}).pack(shape);
  const ProfileKey live = Profile::from_levels(shape, {4, 4, 2, 2}).pack(shape);
  const double ratio_with = table_with.score(dead_end) / table_with.score(live);
  const double ratio_without = table_without.score(dead_end) / table_without.score(live);
  EXPECT_LT(ratio_with, ratio_without);
}

TEST(ScoreTable, DigestDistinguishesInputs) {
  const ProfileShape shape = paper_shape();
  const std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1, 1}}}};
  const std::vector<QuantizedDemand> other = {QuantizedDemand{{{2, 1}}}};
  ScoreTableOptions options;
  const std::string base = ScoreTable::digest(shape, demands, options);
  EXPECT_EQ(base, ScoreTable::digest(shape, demands, options));  // stable
  EXPECT_NE(base, ScoreTable::digest(shape, other, options));
  ScoreTableOptions changed = options;
  changed.pagerank.damping = 0.9;
  EXPECT_NE(base, ScoreTable::digest(shape, demands, changed));
  changed = options;
  changed.direction = VoteDirection::kForwardAsPrinted;
  EXPECT_NE(base, ScoreTable::digest(shape, demands, changed));
}

TEST(ScoreTable, SaveLoadRoundTrip) {
  const ProfileGraph g = paper_graph();
  const ScoreTable table = ScoreTable::build(g);
  const auto path = std::filesystem::temp_directory_path() / "prvm-scoretable-test.bin";
  table.save(path);
  const ScoreTable loaded = ScoreTable::load(path);
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.size(), table.size());
  EXPECT_EQ(loaded.demand_count(), table.demand_count());
  EXPECT_EQ(loaded.digest_string(), table.digest_string());
  EXPECT_TRUE(loaded.shape() == table.shape());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_EQ(loaded.find(g.key_of(u)), table.find(g.key_of(u)));
    for (std::size_t t = 0; t < table.demand_count(); ++t) {
      const auto a = table.best_after(g.key_of(u), t);
      const auto b = loaded.best_after(g.key_of(u), t);
      EXPECT_EQ(a.has_value(), b.has_value());
      if (a && b) {
        EXPECT_EQ(a->successor, b->successor);
        EXPECT_FLOAT_EQ(static_cast<float>(a->score), static_cast<float>(b->score));
      }
    }
  }
}

TEST(ScoreTable, LoadRejectsGarbage) {
  const auto path = std::filesystem::temp_directory_path() / "prvm-scoretable-garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a score table", f);
    std::fclose(f);
  }
  EXPECT_THROW(ScoreTable::load(path), std::invalid_argument);
  std::filesystem::remove(path);
  EXPECT_THROW(ScoreTable::load(path), std::invalid_argument);  // missing file
}

}  // namespace
}  // namespace prvm
