// PRVB1 end-to-end over real sockets (DESIGN.md §10): the trace-replay
// differential — the same request stream driven through a JSON-lines
// channel and a binary channel must leave byte-identical WALs and equal
// state digests behind, with semantically identical responses. Plus the
// connection-level hostile cases the codec tests cannot reach: garbage
// injected mid-stream on a live binary connection, a near-miss preamble
// falling back to JSON, and FailoverCellChannel qualifying a cell over the
// binary protocol.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cluster/catalog.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "router/cell_channel.hpp"
#include "service/binary_protocol.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/socket_server.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

std::shared_ptr<const ScoreTableSet> tables_for(const Catalog& catalog) {
  return std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("prvm-binsock-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is), {});
}

/// A raw Unix-domain client for driving hostile bytes at the server —
/// below the SocketCellChannel abstraction, above nothing.
class RawClient {
 public:
  explicit RawClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    ::sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  void send(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ::ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Reads until `frames` intact binary response frames arrived (damage
  /// reports from the buffer fail the test — the server must never emit a
  /// damaged frame), or the connection closes.
  std::vector<Response> recv_binary_responses(std::size_t frames) {
    std::vector<Response> responses;
    BinaryFrameBuffer buffer;
    char chunk[4096];
    while (responses.size() < frames) {
      while (const auto frame = buffer.next()) {
        EXPECT_EQ(frame->status, BinaryFrameBuffer::Status::kOk);
        EXPECT_EQ(frame->kind, BinaryFrameKind::kResponse);
        std::string error;
        const auto response = parse_binary_response(frame->payload, &error);
        EXPECT_TRUE(response.has_value()) << error;
        if (response.has_value()) responses.push_back(*response);
        if (responses.size() == frames) return responses;
      }
      const ::ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    }
    return responses;
  }

  /// Reads until `count` JSON-lines responses arrived.
  std::vector<Response> recv_json_responses(std::size_t count) {
    std::vector<Response> responses;
    LineBuffer buffer;
    char chunk[4096];
    while (responses.size() < count) {
      while (const auto frame = buffer.next()) {
        EXPECT_FALSE(frame->oversized);
        std::string error;
        const auto response = parse_response(frame->line, &error);
        EXPECT_TRUE(response.has_value()) << error << ": " << frame->line;
        if (response.has_value()) responses.push_back(*response);
        if (responses.size() == count) return responses;
      }
      const ::ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    }
    return responses;
  }

 private:
  int fd_ = -1;
};

class BinarySocketTest : public ::testing::Test {
 protected:
  BinarySocketTest() : catalog_(ec2_catalog()), tables_(tables_for(catalog_)) {}

  std::unique_ptr<PlacementService> make_service(ServiceConfig config) {
    return std::make_unique<PlacementService>(catalog_, mixed_pm_fleet(catalog_, 12), tables_,
                                              std::move(config));
  }

  /// A seeded churn trace over the full wire surface a router exercises:
  /// places by catalog index AND by type name (the name path is what the
  /// binary channel interns), anti-collocation groups, releases, migrates,
  /// lookups. The feedback loop runs against a throwaway in-memory service
  /// so the stream is a pure function of the seed.
  std::vector<Request> make_trace(std::uint64_t seed, int ops) {
    auto shadow = make_service(ServiceConfig{});
    Rng rng(seed);
    std::vector<Request> trace;
    std::vector<VmId> live;
    VmId next_vm = 1;
    for (int op = 0; op < ops; ++op) {
      const int dice = rng.uniform_int(0, 99);
      Request request;
      if (dice < 55 || live.empty()) {
        request.op = RequestOp::kPlace;
        request.vm_id = next_vm++;
        const std::size_t type = rng.uniform_index(catalog_.vm_types().size());
        if (rng.chance(0.5)) {
          request.vm_type_name = catalog_.vm_types()[type].name;
        } else {
          request.vm_type_index = type;
        }
        if (rng.chance(0.25)) request.group = "g" + std::to_string(rng.uniform_int(0, 2));
      } else if (dice < 75) {
        request.op = RequestOp::kRelease;
        request.vm_id = live[rng.uniform_index(live.size())];
      } else if (dice < 90) {
        request.op = RequestOp::kMigrate;
        request.vm_id = live[rng.uniform_index(live.size())];
      } else {
        request.op = RequestOp::kLookup;
        request.vm_id = live[rng.uniform_index(live.size())];
      }
      if (shadow->execute(request).ok && request.op == RequestOp::kPlace) {
        live.push_back(request.vm_id);
      } else if (request.op == RequestOp::kRelease) {
        live.erase(std::find(live.begin(), live.end(), request.vm_id));
      }
      trace.push_back(std::move(request));
    }
    return trace;
  }

  /// One complete service + socket server + channel stack; replays `trace`
  /// through the channel and returns (responses, wal bytes, state digest).
  struct ReplayResult {
    std::vector<Response> responses;
    std::string wal;
    std::uint64_t digest = 0;
  };

  ReplayResult replay(const std::vector<Request>& trace, bool binary, const std::string& tag) {
    TempDir dir(tag);
    const std::string socket_path = (dir.path() / "cell.sock").string();
    ServiceConfig config;
    config.data_dir = dir.path();
    auto service = make_service(std::move(config));
    service->start();
    SocketServerConfig socket_config;
    socket_config.unix_path = socket_path;
    SocketServer server(*service, socket_config);
    server.start();

    ReplayResult result;
    {
      SocketCellChannel channel(socket_path, binary);
      EXPECT_EQ(channel.binary(), binary);
      std::vector<std::future<Response>> futures;
      futures.reserve(trace.size());
      for (const Request& request : trace) futures.push_back(channel.submit(request));
      result.responses.reserve(trace.size());
      for (auto& future : futures) result.responses.push_back(future.get());
    }
    server.stop();
    service->stop_now();
    result.wal = read_file(dir.path() / "wal.log");
    result.digest = datacenter_state_digest(service->datacenter());
    return result;
  }

  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
};

TEST_F(BinarySocketTest, TraceReplayDifferentialJsonVsBinary) {
  for (const std::uint64_t seed : {0xb1a5u, 0xcafeu}) {
    const std::vector<Request> trace = make_trace(seed, 300);
    const ReplayResult json = replay(trace, /*binary=*/false, "json-" + std::to_string(seed));
    const ReplayResult binary = replay(trace, /*binary=*/true, "bin-" + std::to_string(seed));

    // Semantically identical responses, op for op.
    ASSERT_EQ(json.responses.size(), binary.responses.size());
    for (std::size_t i = 0; i < json.responses.size(); ++i) {
      const Response& a = json.responses[i];
      const Response& b = binary.responses[i];
      EXPECT_EQ(a.ok, b.ok) << "op " << i;
      EXPECT_EQ(a.op, b.op) << "op " << i;
      EXPECT_EQ(a.vm, b.vm) << "op " << i;
      EXPECT_EQ(a.pm, b.pm) << "op " << i;
      EXPECT_EQ(a.error, b.error) << "op " << i;
      EXPECT_EQ(a.message, b.message) << "op " << i;
      EXPECT_EQ(a.extra, b.extra) << "op " << i;
    }

    // The differential anchor: the service behind the codec cannot tell the
    // protocols apart — byte-identical WAL, equal state digest.
    ASSERT_FALSE(json.wal.empty());
    EXPECT_EQ(json.wal, binary.wal) << "WAL bytes diverged at seed " << seed;
    EXPECT_EQ(json.digest, binary.digest);
  }
}

TEST_F(BinarySocketTest, GarbageMidStreamGetsOneErrorAndTheConnectionSurvives) {
  TempDir dir("resync");
  const std::string socket_path = (dir.path() / "cell.sock").string();
  auto service = make_service(ServiceConfig{});
  service->start();
  SocketServerConfig socket_config;
  socket_config.unix_path = socket_path;
  SocketServer server(*service, socket_config);
  server.start();

  RawClient client(socket_path);
  ASSERT_TRUE(client.ok());

  Request place;
  place.op = RequestOp::kPlace;
  place.vm_id = 1;
  place.vm_type_index = 0;

  std::string bytes(kBinaryPreamble, sizeof(kBinaryPreamble));
  encode_binary_request_into(place, bytes);
  bytes += "!! NOT A FRAME !!";  // no 0xBF anywhere: one clean garbage run
  place.vm_id = 2;
  encode_binary_request_into(place, bytes);
  client.send(bytes);

  const std::vector<Response> responses = client.recv_binary_responses(3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].ok) << responses[0].error;
  EXPECT_EQ(responses[0].vm, 1u);
  EXPECT_FALSE(responses[1].ok);
  EXPECT_EQ(responses[1].error, "bad_frame");
  EXPECT_TRUE(responses[2].ok) << responses[2].error;
  EXPECT_EQ(responses[2].vm, 2u);

  server.stop();
  service->stop_now();
}

TEST_F(BinarySocketTest, EveryDamagedCrcFrameGetsItsOwnErrorAndFifoHolds) {
  // Two corrupted pipelined requests must produce two error responses in
  // their own order slots — a collapsed report would pair every later
  // response with the wrong request and hang the final ones.
  TempDir dir("crc");
  const std::string socket_path = (dir.path() / "cell.sock").string();
  auto service = make_service(ServiceConfig{});
  service->start();
  SocketServerConfig socket_config;
  socket_config.unix_path = socket_path;
  SocketServer server(*service, socket_config);
  server.start();

  RawClient client(socket_path);
  ASSERT_TRUE(client.ok());

  Request place;
  place.op = RequestOp::kPlace;
  place.vm_id = 7;
  place.vm_type_index = 1;

  std::string bytes(kBinaryPreamble, sizeof(kBinaryPreamble));
  encode_binary_request_into(place, bytes);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);  // corrupt frame 1's payload
  place.vm_id = 8;
  encode_binary_request_into(place, bytes);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);  // ... and frame 2's
  place.vm_id = 9;
  encode_binary_request_into(place, bytes);
  client.send(bytes);

  const std::vector<Response> responses = client.recv_binary_responses(3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].error, "bad_frame");
  EXPECT_FALSE(responses[1].ok);
  EXPECT_EQ(responses[1].error, "bad_frame");
  EXPECT_TRUE(responses[2].ok) << responses[2].error;
  EXPECT_EQ(responses[2].vm, 9u);

  server.stop();
  service->stop_now();
}

TEST_F(BinarySocketTest, NearMissPreambleFallsBackToJsonLines) {
  TempDir dir("fallback");
  const std::string socket_path = (dir.path() / "cell.sock").string();
  auto service = make_service(ServiceConfig{});
  service->start();
  SocketServerConfig socket_config;
  socket_config.unix_path = socket_path;
  SocketServer server(*service, socket_config);
  server.start();

  // Starts with 'P' like the preamble but is not it: the server must fall
  // back to the JSON-lines path (one bad_json error), not hang or die, and
  // real JSON on the same connection must then work.
  RawClient client(socket_path);
  ASSERT_TRUE(client.ok());
  client.send("PING nothing\n{\"op\":\"place\",\"vm\":1,\"type\":0}\n");
  const std::vector<Response> responses = client.recv_json_responses(2);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].error, "bad_json");
  EXPECT_TRUE(responses[1].ok) << responses[1].error;
  EXPECT_EQ(responses[1].vm, 1u);

  server.stop();
  service->stop_now();
}

TEST_F(BinarySocketTest, FailoverChannelQualifiesAndServesOverBinary) {
  TempDir dir("failover");
  const std::string socket_path = (dir.path() / "cell.sock").string();
  ServiceConfig config;
  config.cell_id = 1;
  auto service = make_service(std::move(config));
  service->start();
  SocketServerConfig socket_config;
  socket_config.unix_path = socket_path;
  SocketServer server(*service, socket_config);
  server.start();

  // Qualification runs health (and possibly promote) through the same
  // binary channel the traffic will use.
  FailoverCellChannel::Config failover;
  failover.endpoints = {"unix:" + socket_path};
  failover.binary = true;
  FailoverCellChannel channel(failover);
  ASSERT_TRUE(channel.connected());
  EXPECT_EQ(channel.active_endpoint(), "unix:" + socket_path);

  Request place;
  place.op = RequestOp::kPlace;
  place.vm_id = 4;
  place.vm_type_name = catalog_.vm_types()[0].name;  // exercises interning
  const Response placed = channel.submit(place).get();
  ASSERT_TRUE(placed.ok) << placed.error << ": " << placed.message;
  EXPECT_EQ(placed.vm, 4u);

  Request lookup;
  lookup.op = RequestOp::kLookup;
  lookup.vm_id = 4;
  const Response looked = channel.submit(lookup).get();
  EXPECT_TRUE(looked.ok);
  EXPECT_EQ(looked.pm, placed.pm);

  server.stop();
  service->stop_now();
}

}  // namespace
}  // namespace prvm
