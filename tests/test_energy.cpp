#include "energy/power_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace prvm {
namespace {

TEST(PowerModel, TableThreeAnchorsE52670) {
  const PowerModel& m = power_model_for("E5-2670");
  EXPECT_DOUBLE_EQ(m.power_watts(0.0), 337.3);
  EXPECT_DOUBLE_EQ(m.power_watts(0.2), 349.2);
  EXPECT_DOUBLE_EQ(m.power_watts(0.4), 363.6);
  EXPECT_DOUBLE_EQ(m.power_watts(0.6), 378.0);
  EXPECT_DOUBLE_EQ(m.power_watts(0.8), 396.0);
  EXPECT_DOUBLE_EQ(m.power_watts(1.0), 417.6);
  EXPECT_DOUBLE_EQ(m.idle_watts(), 337.3);
  EXPECT_DOUBLE_EQ(m.peak_watts(), 417.6);
}

TEST(PowerModel, TableThreeAnchorsE52680) {
  const PowerModel& m = power_model_for("E5-2680");
  EXPECT_DOUBLE_EQ(m.power_watts(0.0), 394.4);
  EXPECT_DOUBLE_EQ(m.power_watts(0.2), 408.3);
  EXPECT_DOUBLE_EQ(m.power_watts(0.4), 425.2);
  EXPECT_DOUBLE_EQ(m.power_watts(0.6), 442.0);
  EXPECT_DOUBLE_EQ(m.power_watts(0.8), 463.1);
  EXPECT_DOUBLE_EQ(m.power_watts(1.0), 488.3);
}

TEST(PowerModel, LinearInterpolationBetweenAnchors) {
  const PowerModel& m = power_model_for("E5-2670");
  EXPECT_NEAR(m.power_watts(0.1), (337.3 + 349.2) / 2.0, 1e-9);
  EXPECT_NEAR(m.power_watts(0.5), (363.6 + 378.0) / 2.0, 1e-9);
  EXPECT_NEAR(m.power_watts(0.9), (396.0 + 417.6) / 2.0, 1e-9);
  EXPECT_NEAR(m.power_watts(0.25), 349.2 + 0.25 * (363.6 - 349.2), 1e-9);
}

TEST(PowerModel, ClampsOutOfRangeUtilization) {
  const PowerModel& m = power_model_for("E5-2670");
  EXPECT_DOUBLE_EQ(m.power_watts(-0.5), m.idle_watts());
  EXPECT_DOUBLE_EQ(m.power_watts(1.7), m.peak_watts());
}

TEST(PowerModel, MonotoneInUtilization) {
  const PowerModel& m = power_model_for("E5-2680");
  double previous = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double w = m.power_watts(i / 100.0);
    EXPECT_GE(w, previous);
    previous = w;
  }
}

TEST(PowerModel, UnknownCpuModelThrows) {
  EXPECT_THROW(power_model_for("i486"), std::invalid_argument);
}

TEST(PowerModel, RejectsDecreasingAnchors) {
  EXPECT_THROW(PowerModel({100.0, 90.0, 110.0, 120.0, 130.0, 140.0}),
               std::invalid_argument);
  EXPECT_THROW(PowerModel({-1.0, 0.0, 1.0, 2.0, 3.0, 4.0}), std::invalid_argument);
}

TEST(PowerModel, CustomModelInterpolates) {
  const PowerModel m({0.0, 20.0, 40.0, 60.0, 80.0, 100.0});
  for (int i = 0; i <= 10; ++i) {
    EXPECT_NEAR(m.power_watts(i / 10.0), i * 10.0, 1e-9);
  }
}

TEST(Energy, WattsToKwh) {
  EXPECT_DOUBLE_EQ(watts_to_kwh(1000.0, 3600.0), 1.0);
  EXPECT_DOUBLE_EQ(watts_to_kwh(500.0, 7200.0), 1.0);
  EXPECT_DOUBLE_EQ(watts_to_kwh(0.0, 3600.0), 0.0);
  // One epoch of an idle M3: 337.3 W for 300 s.
  EXPECT_NEAR(watts_to_kwh(337.3, 300.0), 0.0281, 1e-4);
}

}  // namespace
}  // namespace prvm
