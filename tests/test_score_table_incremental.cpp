// Differential tests for incremental profile-graph / score-table
// maintenance and the mmap score-table image.
//
// The contract under test is strict: a graph grown via extend() and a table
// grown via ScoreTable::extend() must be *byte-identical* to ones built
// from scratch over the final demand list — same node numbering, same
// float scores, same best-successor entries, same ranked spans — so that
// an engine running on an extended table makes bit-identical placement
// decisions.
#include "common/check.hpp"
#include "core/catalog_graphs.hpp"
#include "core/score_table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>

namespace prvm {
namespace {

ProfileShape paper_shape() {
  return ProfileShape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
}

/// A pool of distinct single-group demands on the paper shape.
const std::vector<QuantizedDemand>& demand_pool() {
  static const std::vector<QuantizedDemand> pool = {
      QuantizedDemand{{{1}}},          QuantizedDemand{{{1, 1}}},
      QuantizedDemand{{{2}}},          QuantizedDemand{{{2, 1}}},
      QuantizedDemand{{{1, 1, 1, 1}}}, QuantizedDemand{{{2, 2}}},
      QuantizedDemand{{{3}}},          QuantizedDemand{{{4}}},
      QuantizedDemand{{{3, 2, 1}}},    QuantizedDemand{{{2, 1, 1}}},
  };
  return pool;
}

void expect_graphs_identical(const ProfileGraph& a, const ProfileGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.demands().size(), b.demands().size());
  for (NodeId u = 0; u < a.node_count(); ++u) {
    ASSERT_EQ(a.key_of(u), b.key_of(u)) << "node " << u;
    const auto sa = a.graph().successors(u);
    const auto sb = b.graph().successors(u);
    ASSERT_EQ(std::vector<NodeId>(sa.begin(), sa.end()),
              std::vector<NodeId>(sb.begin(), sb.end()))
        << "adjacency of node " << u;
  }
}

void expect_tables_identical(const ScoreTable& a, const ScoreTable& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.demand_count(), b.demand_count());
  EXPECT_EQ(a.digest_string(), b.digest_string());
  for (NodeId u = 0; u < a.size(); ++u) {
    ASSERT_EQ(a.key_of(u), b.key_of(u)) << "node " << u;
    // find() returns double(float); exact equality is the contract.
    ASSERT_EQ(a.find(a.key_of(u)), b.find(b.key_of(u))) << "score of node " << u;
  }
  for (std::size_t t = 0; t < a.demand_count(); ++t) {
    const auto row_a = a.best_row(t);
    const auto row_b = b.best_row(t);
    ASSERT_EQ(row_a.size(), row_b.size());
    for (std::size_t u = 0; u < row_a.size(); ++u) {
      ASSERT_EQ(row_a[u].score, row_b[u].score) << "demand " << t << " node " << u;
      ASSERT_EQ(row_a[u].successor, row_b[u].successor) << "demand " << t << " node " << u;
    }
    const auto ranked_a = a.ranked_keys(t);
    const auto ranked_b = b.ranked_keys(t);
    ASSERT_EQ(ranked_a.size(), ranked_b.size()) << "ranked span of demand " << t;
    for (std::size_t i = 0; i < ranked_a.size(); ++i) {
      ASSERT_EQ(ranked_a[i].score, ranked_b[i].score) << "demand " << t << " rank " << i;
      ASSERT_EQ(ranked_a[i].key, ranked_b[i].key) << "demand " << t << " rank " << i;
    }
  }
}

TEST(IncrementalScoreTable, GraphExtendMatchesFreshBuild) {
  const auto& pool = demand_pool();
  ProfileGraph grown(paper_shape(), {pool[0], pool[1]});
  grown.extend({pool[4], pool[6]});
  grown.extend({pool[8]});
  const ProfileGraph fresh(paper_shape(), {pool[0], pool[1], pool[4], pool[6], pool[8]});
  expect_graphs_identical(grown, fresh);
}

TEST(IncrementalScoreTable, ExtendMatchesFreshBuildRandomizedGrowth) {
  const auto& pool = demand_pool();
  for (std::uint32_t seed = 0; seed < 6; ++seed) {
    std::mt19937 rng(seed);
    std::vector<QuantizedDemand> demands = {pool[rng() % pool.size()]};
    ProfileGraph graph(paper_shape(), demands);
    ScoreTable table = ScoreTable::build(graph);

    for (int step = 0; step < 4; ++step) {
      // Append 1-2 demands from the pool (repeats allowed: a duplicate
      // demand exercises the graph-unchanged fast path).
      std::vector<QuantizedDemand> batch;
      const int count = 1 + static_cast<int>(rng() % 2);
      for (int i = 0; i < count; ++i) batch.push_back(pool[rng() % pool.size()]);
      demands.insert(demands.end(), batch.begin(), batch.end());

      const ProfileGraph::ExtendStats stats = graph.extend(batch);
      table = ScoreTable::extend(table, graph, stats.changed());

      const ProfileGraph fresh_graph(paper_shape(), demands);
      expect_graphs_identical(graph, fresh_graph);
      const ScoreTable fresh = ScoreTable::build(fresh_graph);
      expect_tables_identical(table, fresh);
    }
  }
}

TEST(IncrementalScoreTable, DuplicateDemandTakesTheFastPath) {
  const auto& pool = demand_pool();
  ProfileGraph graph(paper_shape(), {pool[1], pool[4]});
  const ScoreTable base = ScoreTable::build(graph);
  // A demand identical to an existing one reaches exactly the same
  // successors: no new node, no new edge.
  const ProfileGraph::ExtendStats stats = graph.extend({pool[1]});
  EXPECT_FALSE(stats.changed());
  EXPECT_EQ(stats.new_nodes, 0u);
  EXPECT_EQ(stats.new_edges, 0u);
  const ScoreTable extended = ScoreTable::extend(base, graph, stats.changed());
  const ScoreTable fresh = ScoreTable::build(ProfileGraph(paper_shape(), graph.demands()));
  expect_tables_identical(extended, fresh);
}

/// Small CPU-only catalog (GENI-style PM) whose VM-type list we can grow.
Catalog slot_catalog(std::size_t vm_count) {
  const std::vector<VmType> all = {
      {"t1", 1, 1.0, 0.0, 0, 0.0},  {"t2", 2, 1.0, 0.0, 0, 0.0},
      {"t2w", 1, 2.0, 0.0, 0, 0.0}, {"t4", 4, 1.0, 0.0, 0, 0.0},
      {"t2d", 2, 1.0, 0.0, 0, 0.0},  // duplicate demand of t2: fast path
  };
  PRVM_REQUIRE(vm_count >= 1 && vm_count <= all.size(), "bad vm_count");
  return Catalog(std::vector<VmType>(all.begin(), all.begin() + vm_count), geni_pm_types());
}

void expect_sets_identical(const Catalog& catalog, const ScoreTableSet& a,
                           const ScoreTableSet& b) {
  ASSERT_EQ(a.pm_type_count(), b.pm_type_count());
  for (std::size_t p = 0; p < a.pm_type_count(); ++p) {
    expect_tables_identical(a.table(p), b.table(p));
    for (std::size_t v = 0; v < catalog.vm_types().size(); ++v) {
      EXPECT_EQ(a.demand_slot(p, v), b.demand_slot(p, v)) << "pm " << p << " vm " << v;
    }
  }
}

TEST(IncrementalScoreTable, CatalogGrowthMatchesFullRebuild) {
  IncrementalScoreTables inc(slot_catalog(1));
  for (std::size_t n = 2; n <= 5; ++n) {
    const Catalog grown = slot_catalog(n);
    const IncrementalScoreTables::ExtendReport report = inc.extend_to(grown);
    EXPECT_EQ(report.fast_extends + report.graph_extends + report.unchanged,
              grown.pm_types().size());
    const ScoreTableSet fresh = build_score_tables(grown, {}, std::nullopt);
    expect_sets_identical(grown, inc.set(), fresh);
  }
  // The last append (t2d) duplicates t2's demand: every PM type must have
  // taken the fast path.
  const IncrementalScoreTables::ExtendReport dup =
      IncrementalScoreTables(slot_catalog(4)).extend_to(slot_catalog(5));
  EXPECT_EQ(dup.graph_extends, 0u);
  EXPECT_EQ(dup.new_nodes, 0u);
}

TEST(IncrementalScoreTable, ExtendToRejectsMutatedPrefix) {
  IncrementalScoreTables inc(slot_catalog(2));
  // Same sizes, different VM list: the prefix check must throw.
  const std::vector<VmType> mutated = {{"t1", 1, 1.0, 0.0, 0, 0.0},
                                       {"tX", 3, 1.0, 0.0, 0, 0.0},
                                       {"t4", 4, 1.0, 0.0, 0, 0.0}};
  const Catalog bad(mutated, geni_pm_types());
  EXPECT_THROW(inc.extend_to(bad), std::exception);
}

TEST(IncrementalScoreTable, ImageRoundTripServesIdenticalAnswers) {
  const auto& pool = demand_pool();
  const ProfileGraph graph(paper_shape(), {pool[1], pool[4], pool[8]});
  const ScoreTable built = ScoreTable::build(graph);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "prvm_score_table_image_test.bin";
  built.save_image(path);
  {
    const ScoreTable mapped = ScoreTable::map_image(path);
    EXPECT_TRUE(mapped.is_mapped());
    EXPECT_FALSE(built.is_mapped());
    expect_tables_identical(built, mapped);

    // A copy shares the mapping and outlives the original table object.
    ScoreTable copy = mapped;
    EXPECT_TRUE(copy.is_mapped());
    expect_tables_identical(built, copy);
  }
  // Garbage must be rejected, not crash.
  {
    std::FILE* f = std::fopen(path.string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not an image at all, definitely not page aligned", f);
    std::fclose(f);
    EXPECT_THROW(ScoreTable::map_image(path), std::exception);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace prvm
