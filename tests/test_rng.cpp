#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/stats.hpp"

namespace prvm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 5);  // adjacent seeds must not correlate (SplitMix)
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.uniform_index(5)];
  for (int count : seen) EXPECT_GT(count, 100);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformRealInRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal(5.0, 2.0));
  EXPECT_NEAR(mean(samples), 5.0, 0.1);
  EXPECT_NEAR(stddev(samples), 2.0, 0.1);
}

TEST(Rng, BetaStaysInUnitIntervalWithRightMean) {
  Rng rng(19);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.beta(2.0, 6.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    samples.push_back(v);
  }
  EXPECT_NEAR(mean(samples), 0.25, 0.02);  // a/(a+b)
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  // Out-of-range probabilities are clamped, not errors.
  EXPECT_TRUE(rng.chance(2.0));
  EXPECT_FALSE(rng.chance(-1.0));
}

TEST(Rng, ParetoFloorAndTail) {
  Rng rng(29);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.pareto(0.5, 2.5);
    EXPECT_GE(v, 0.5);
    samples.push_back(v);
  }
  // E[X] = alpha*xm/(alpha-1) = 2.5*0.5/1.5.
  EXPECT_NEAR(mean(samples), 2.5 * 0.5 / 1.5, 0.05);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(31);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(37);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng a(41);
  Rng b(41);
  Rng fa = a.fork(9);
  Rng fb = b.fork(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fa.uniform_int(0, 1 << 30), fb.uniform_int(0, 1 << 30));
  }
  // Different labels give different streams.
  Rng c(41);
  Rng d(41);
  Rng fc = c.fork(1);
  Rng fd = d.fork(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (fc.uniform_int(0, 1 << 30) == fd.uniform_int(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace prvm
