// Tests for the observability subsystem (src/obs/): shard/merge
// correctness of counters and histograms under concurrency, the log2
// bucketing math, the quantile error bound against an exact sorted
// reference, registry naming rules, and both render formats.
//
// All fixtures are named Obs* so the TSan CI job can run exactly this
// suite (ctest -R Obs) — the hot paths are relaxed atomics and the suite
// doubles as the data-race regression net.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "service/protocol.hpp"

namespace prvm::obs {
namespace {

TEST(ObsCounterTest, AddIncAndMergedValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsCounterTest, MultiThreadedTotalsAreExact) {
  Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGaugeTest, SetAddAndHighWaterMark) {
  Gauge g;
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set_max(5);
  EXPECT_EQ(g.value(), 7);  // lower value does not regress the mark
  g.set_max(99);
  EXPECT_EQ(g.value(), 99);
}

TEST(ObsHistogramTest, BucketBoundsContainTheirValues) {
  // Every value must land in a bucket whose [lo, hi) range contains it,
  // across exact buckets, octave boundaries and the top of the u64 range.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 1024; ++v) probes.push_back(v);
  for (int shift = 10; shift < 64; ++shift) {
    const std::uint64_t p = std::uint64_t{1} << shift;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
    probes.push_back(p + (p >> 1));
  }
  probes.push_back(~std::uint64_t{0});
  std::mt19937_64 rng(0xb0b);
  for (int i = 0; i < 10'000; ++i) probes.push_back(rng());

  for (const std::uint64_t v : probes) {
    const std::size_t i = Histogram::bucket_of(v);
    ASSERT_LT(i, Histogram::kBuckets) << "value " << v;
    EXPECT_LE(Histogram::bucket_lo(i), v) << "value " << v;
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_GT(Histogram::bucket_hi(i), v) << "value " << v;
    } else {
      EXPECT_GE(Histogram::bucket_hi(i), v) << "value " << v;  // saturated top bucket
    }
  }
}

TEST(ObsHistogramTest, BucketBoundsAreMonotoneAndTight) {
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    // Adjacent buckets tile the axis with no gaps or overlaps...
    EXPECT_EQ(Histogram::bucket_hi(i), Histogram::bucket_lo(i + 1)) << "bucket " << i;
    // ...and width/lo <= 1/8 beyond the exact range, which is what gives
    // interpolated quantiles their 12.5% relative error bound.
    const std::uint64_t lo = Histogram::bucket_lo(i);
    const std::uint64_t width = Histogram::bucket_hi(i) - lo;
    if (lo >= 2 * Histogram::kSubBuckets) {
      EXPECT_LE(width * Histogram::kSubBuckets, lo) << "bucket " << i;
    }
  }
}

TEST(ObsHistogramTest, CountAndSumAreExact) {
  Histogram h;
  std::uint64_t expected_sum = 0;
  for (std::uint64_t v = 0; v < 5000; ++v) {
    h.record(v * v);
    expected_sum += v * v;
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5000u);
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_DOUBLE_EQ(snap.mean(), static_cast<double>(expected_sum) / 5000.0);
}

// Estimated quantiles vs the exact order statistic of the recorded sample:
// relative error must stay within the bucketing bound (12.5%, plus a hair
// of slack for interpolation at bucket edges).
void check_quantiles(const std::vector<std::uint64_t>& samples) {
  Histogram h;
  for (const std::uint64_t v : samples) h.record(v);
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const HistogramSnapshot snap = h.snapshot();
  for (const double q : {0.01, 0.10, 0.25, 0.50, 0.90, 0.99, 0.999}) {
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(q * static_cast<double>(sorted.size()) + 0.5));
    const double exact = static_cast<double>(sorted[rank - 1]);
    const double estimate = snap.quantile(q);
    EXPECT_NEAR(estimate, exact, 0.13 * exact + 1.0) << "q=" << q;
  }
}

TEST(ObsHistogramTest, QuantilesWithinErrorBoundUniform) {
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::uint64_t> dist(0, 1'000'000);
  std::vector<std::uint64_t> samples(20'000);
  for (auto& v : samples) v = dist(rng);
  check_quantiles(samples);
}

TEST(ObsHistogramTest, QuantilesWithinErrorBoundLogUniform) {
  // Latency-shaped data: spread across many octaves, like ns timings.
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> exponent(0.0, 30.0);
  std::vector<std::uint64_t> samples(20'000);
  for (auto& v : samples) {
    v = static_cast<std::uint64_t>(std::pow(2.0, exponent(rng)));
  }
  check_quantiles(samples);
}

TEST(ObsHistogramTest, QuantilesWithinErrorBoundHeavyTail) {
  // Mostly-fast with a slow tail: the shape where p999 actually matters.
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::uint64_t> fast(100, 2'000);
  std::uniform_int_distribution<std::uint64_t> slow(1'000'000, 50'000'000);
  std::vector<std::uint64_t> samples(20'000);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = i % 200 == 0 ? slow(rng) : fast(rng);
  }
  check_quantiles(samples);
}

TEST(ObsHistogramTest, ShardsMergeExactlyAcrossThreads) {
  Histogram h;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(t * 1000 + (i % 7));
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) expected_sum += t * 1000 + (i % 7);
  }
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(ObsHistogramTest, SnapshotsWhileWritersHammer) {
  // A reader snapshotting mid-flight must see internally consistent,
  // monotonically growing totals — and TSan must stay quiet.
  Histogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      // do-while: even if the reader finishes before this thread is ever
      // scheduled (single-core CI), every writer lands at least one sample.
      std::uint64_t v = 1;
      do {
        h.record(v++ % 100'000);
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  std::uint64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_GE(snap.count, last_count);
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : snap.counts) bucket_total += c;
    EXPECT_EQ(bucket_total, snap.count);
    last_count = snap.count;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GT(h.snapshot().count, 0u);
}

TEST(ObsScopedTimerTest, RecordsElapsedNanoseconds) {
  Histogram h;
  {
    const ScopedTimerNs timer(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 1'000'000u);  // slept >= 2ms; allow a sloppy clock
}

TEST(ObsRegistryTest, SameNameReturnsSameMetric) {
  Registry r;
  Counter& a = r.counter("prvm_test_total");
  a.add(7);
  EXPECT_EQ(&a, &r.counter("prvm_test_total"));
  EXPECT_EQ(r.counter("prvm_test_total").value(), 7u);
  EXPECT_EQ(r.find_counter("prvm_test_total"), &a);
  EXPECT_EQ(r.find_counter("prvm_absent_total"), nullptr);
}

TEST(ObsRegistryTest, KindConflictAndBadNamesThrow) {
  Registry r;
  r.counter("prvm_test_total");
  EXPECT_THROW(r.gauge("prvm_test_total"), std::invalid_argument);
  EXPECT_THROW(r.histogram("prvm_test_total"), std::invalid_argument);
  EXPECT_THROW(r.counter(""), std::invalid_argument);
  EXPECT_THROW(r.counter("has space"), std::invalid_argument);
  EXPECT_THROW(r.counter("0starts_with_digit"), std::invalid_argument);
  // find_* does not register and reports the kind mismatch as absence.
  EXPECT_EQ(r.find_gauge("prvm_test_total"), nullptr);
}

TEST(ObsRegistryTest, ConcurrentRegistrationIsSafe) {
  Registry r;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&r] {
      for (int i = 0; i < 200; ++i) {
        r.counter("prvm_shared_total").inc();
        r.histogram("prvm_shared_ns").record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.counter("prvm_shared_total").value(), 8u * 200u);
  EXPECT_EQ(r.histogram("prvm_shared_ns").snapshot().count, 8u * 200u);
}

TEST(ObsRegistryTest, PrometheusExpositionShape) {
  Registry r;
  r.counter("prvm_ops_total").add(5);
  r.gauge("prvm_depth").set(-3);
  Histogram& h = r.histogram("prvm_wait_ns");
  for (std::uint64_t v : {3u, 3u, 70u, 900u, 900u, 900u}) h.record(v);

  const std::string text = r.render_prometheus();
  EXPECT_NE(text.find("# TYPE prvm_ops_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("prvm_ops_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prvm_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("prvm_depth -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prvm_wait_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("prvm_wait_ns_count 6\n"), std::string::npos);
  EXPECT_NE(text.find("prvm_wait_ns_sum 2776\n"), std::string::npos);
  EXPECT_NE(text.find("prvm_wait_ns_bucket{le=\"+Inf\"} 6\n"), std::string::npos);

  // Bucket lines must be cumulative and nondecreasing, ending at count.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t last_cumulative = 0;
  std::size_t bucket_lines = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("prvm_wait_ns_bucket{", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const std::uint64_t cumulative = std::stoull(line.substr(space + 1));
    EXPECT_GE(cumulative, last_cumulative) << line;
    last_cumulative = cumulative;
    ++bucket_lines;
  }
  EXPECT_GE(bucket_lines, 4u);  // 3 value buckets + +Inf
  EXPECT_EQ(last_cumulative, 6u);
}

TEST(ObsRegistryTest, JsonRenderParsesAndOrdersQuantiles) {
  Registry r;
  r.counter("prvm_ops_total").add(12);
  r.gauge("prvm_mode").set(2);
  Histogram& h = r.histogram("prvm_wait_ns");
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> dist(50, 5'000'000);
  for (int i = 0; i < 4000; ++i) h.record(dist(rng));

  std::string error;
  const auto doc = parse_json(r.render_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* ops = counters->find("prvm_ops_total");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->number, 12.0);
  const JsonValue* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->find("prvm_mode")->number, 2.0);

  const JsonValue* hist = doc->find("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* wait = hist->find("prvm_wait_ns");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->find("count")->number, 4000.0);
  const double p50 = wait->find("p50")->number;
  const double p90 = wait->find("p90")->number;
  const double p99 = wait->find("p99")->number;
  const double p999 = wait->find("p999")->number;
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p999);
}

TEST(ObsRegistryTest, GlobalRegistryPtrAliasesTheSingleton) {
  const std::shared_ptr<Registry> ptr = global_registry_ptr();
  EXPECT_EQ(ptr.get(), &Registry::global());
  // Non-owning: copies never try to delete the leaked singleton.
  const std::shared_ptr<Registry> copy = ptr;
  EXPECT_EQ(copy.use_count(), ptr.use_count());
}

}  // namespace
}  // namespace prvm::obs
