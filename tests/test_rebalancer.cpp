// Online rebalancer (DESIGN.md §9): utilization-map decay/staleness
// semantics, LoadView parity with the CloudSimulation reserved-demand model
// (same threshold => same overload classification and the same victims),
// planner round bounds (max moves, cooldown), WAL-durable execution with a
// crash-recovery differential, and the rebalance/util wire surface.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "cluster/catalog.hpp"
#include "core/catalog_graphs.hpp"
#include "obs/metrics.hpp"
#include "rebalance/planner.hpp"
#include "rebalance/utilization.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "sim/migration_policy.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace prvm {
namespace {

constexpr std::uint64_t kMs = 1'000'000ull;  ///< one millisecond in ns

std::shared_ptr<const ScoreTableSet> tables_for(const Catalog& catalog) {
  // Default on-disk cache — shared across the per-test processes.
  return std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
}

/// A unique per-test scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("prvm-test-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

Request place_request(std::uint64_t vm, std::size_t type, std::string group = "") {
  Request request;
  request.op = RequestOp::kPlace;
  request.vm_id = vm;
  request.vm_type_index = type;
  request.group = std::move(group);
  return request;
}

const std::string* find_extra(const Response& response, const std::string& key) {
  for (const auto& [k, v] : response.extra) {
    if (k == key) return &v;
  }
  return nullptr;
}

// --- UtilizationMap --------------------------------------------------------

TEST(UtilizationMapTest, DecayHalvesPerHalfLifeAndGoesStale) {
  UtilizationConfig config;
  config.pm_count = 4;
  config.half_life_ms = 1000;
  config.stale_after_ms = 3000;
  UtilizationMap map(config, /*epoch_ns=*/0);

  EXPECT_FALSE(map.vm_fraction(7, 10 * kMs).has_value()) << "no sample yet";
  EXPECT_TRUE(map.record_vm(7, 0.8, 10 * kMs));
  EXPECT_NEAR(*map.vm_fraction(7, 10 * kMs), 0.8, 1e-6);
  EXPECT_NEAR(*map.vm_fraction(7, 1010 * kMs), 0.4, 1e-3) << "one half-life";
  EXPECT_NEAR(*map.vm_fraction(7, 2010 * kMs), 0.2, 1e-3) << "two half-lives";
  EXPECT_TRUE(map.vm_fraction(7, 3010 * kMs).has_value()) << "at the stale bound";
  EXPECT_FALSE(map.vm_fraction(7, 3011 * kMs).has_value()) << "past stale_after";

  map.record_pm(2, 0.6, 10 * kMs);
  EXPECT_NEAR(*map.pm_fraction(2, 10 * kMs), 0.6, 1e-6);
  EXPECT_NEAR(*map.pm_fraction(2, 1010 * kMs), 0.3, 1e-3);
  EXPECT_FALSE(map.pm_fraction(2, 4000 * kMs).has_value());
  EXPECT_FALSE(map.pm_fraction(3, 10 * kMs).has_value()) << "PM never sampled";

  // Out-of-range PMs are ignored on write and answer nothing on read.
  map.record_pm(99, 0.5, 10 * kMs);
  EXPECT_FALSE(map.pm_fraction(99, 10 * kMs).has_value());
}

TEST(UtilizationMapTest, NewestSampleWinsAndClampsToProtocolRange) {
  UtilizationConfig config;
  config.pm_count = 1;
  config.half_life_ms = 1000;
  config.stale_after_ms = 10'000;
  UtilizationMap map(config, 0);

  EXPECT_TRUE(map.record_vm(5, 0.5, 100 * kMs));
  EXPECT_TRUE(map.record_vm(5, 1.3, 2000 * kMs));  // bursting past reservation
  EXPECT_NEAR(*map.vm_fraction(5, 2000 * kMs), 1.3, 1e-6)
      << "the newer sample replaces the old one entirely";

  map.record_pm(0, -3.0, 100 * kMs);
  EXPECT_NEAR(*map.pm_fraction(0, 100 * kMs), 0.0, 1e-9);
  map.record_pm(0, 7.5, 100 * kMs);
  EXPECT_NEAR(*map.pm_fraction(0, 100 * kMs), 2.0, 1e-9)
      << "samples clamp to the protocol's [0, 2] range";
}

TEST(UtilizationMapTest, FullTableDropsNewKeysButKeepsUpdatingExistingOnes) {
  UtilizationConfig config;
  config.pm_count = 1;
  config.vm_capacity = 16;  // the implementation floor; probes cover it fully
  UtilizationMap map(config, 0);
  ASSERT_EQ(map.vm_capacity(), 16u);

  std::size_t inserted = 0;
  for (VmId vm = 1; vm <= 64; ++vm) {
    if (map.record_vm(vm, 0.5, kMs)) ++inserted;
  }
  EXPECT_EQ(inserted, 16u) << "exactly capacity keys fit; the rest drop";
  EXPECT_TRUE(map.record_vm(1, 0.9, 2 * kMs))
      << "existing keys always update in place, even when the table is full";
  EXPECT_NEAR(*map.vm_fraction(1, 2 * kMs), 0.9, 1e-6);
}

// --- LoadView <-> CloudSimulation parity -----------------------------------

class SimParityTest : public ::testing::Test {
 protected:
  SimParityTest() : catalog_(ec2_catalog()), tables_(tables_for(catalog_)) {}

  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
};

TEST_F(SimParityTest, LoadViewMatchesReservedModelAndPoliciesAgreeOnVictims) {
  // Place a mixed population with the real engine, then feed the live map
  // the exact fractions a constant-trace simulation would read at epoch 0.
  PlacementService service(catalog_, mixed_pm_fleet(catalog_, 6), tables_, {});
  std::vector<Vm> vms;
  std::vector<UtilizationTrace> traces;
  std::vector<std::size_t> binding;
  std::vector<double> fractions;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const std::size_t type = static_cast<std::size_t>(i) % catalog_.vm_types().size();
    const Response placed = service.execute(place_request(i + 1, type));
    ASSERT_TRUE(placed.ok) << placed.error << ": " << placed.message;
    vms.push_back(Vm{static_cast<VmId>(i + 1), type});
    const double fraction = 0.05 + 0.09 * static_cast<double>(i % 10);
    fractions.push_back(fraction);
    traces.emplace_back(std::vector<double>{fraction});
    binding.push_back(static_cast<std::size_t>(i));
  }

  const Datacenter dc = service.datacenter();
  UtilizationConfig map_config;
  map_config.pm_count = dc.pm_count();
  UtilizationMap map(map_config, 0);
  const std::uint64_t now = 100 * kMs;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    ASSERT_TRUE(map.record_vm(vms[i].id, fractions[i], now));
  }
  const LoadView view(&dc, &map, now);

  SimulationOptions options;
  options.epochs = 1;
  options.cpu_model = CpuDemandModel::kReserved;
  options.overload_rule = OverloadRule::kAnyDimension;
  CloudSimulation sim(service.datacenter(), vms, binding, TraceSet(std::move(traces)),
                      options);

  // The sample store keeps float32, so parity is to float precision.
  std::size_t multi_resident_pms = 0;
  for (const PmIndex pm : dc.used_pms()) {
    EXPECT_NEAR(view.pm_cpu_utilization(pm), sim.pm_cpu_utilization(pm), 1e-5);
    EXPECT_NEAR(view.pm_hottest_utilization(pm), sim.pm_hottest_utilization(pm), 1e-5);
    if (dc.pm(pm).vms.size() >= 2) ++multi_resident_pms;
  }
  ASSERT_GT(multi_resident_pms, 0u) << "parity needs PMs with real victim choices";

  // Same threshold => same overload classification (the planner's victim
  // set is exactly the simulator's on a frozen snapshot).
  for (const double threshold : {0.2, 0.35, 0.5, 0.9}) {
    for (const PmIndex pm : dc.used_pms()) {
      EXPECT_EQ(view.pm_hottest_utilization(pm) > threshold,
                sim.pm_hottest_utilization(pm) > threshold)
          << "classification diverged at threshold " << threshold << " on pm " << pm;
    }
  }

  // Every migration policy picks the same victim from either view.
  MinimumMigrationTimePolicy mmt;
  PageRankMigrationPolicy pagerank(tables_);
  MaxCpuVictimPolicy max_cpu;
  for (const PmIndex pm : dc.used_pms()) {
    EXPECT_EQ(mmt.select_victim(view, pm), mmt.select_victim(sim, pm));
    EXPECT_EQ(pagerank.select_victim(view, pm), pagerank.select_victim(sim, pm));
    EXPECT_EQ(max_cpu.select_victim(view, pm), max_cpu.select_victim(sim, pm));
  }
}

TEST_F(SimParityTest, AbsenceOfSignalIsNotLoad) {
  PlacementService service(catalog_, mixed_pm_fleet(catalog_, 2), tables_, {});
  const Response placed = service.execute(place_request(1, 0));
  ASSERT_TRUE(placed.ok);
  const Datacenter dc = service.datacenter();

  UtilizationConfig map_config;
  map_config.pm_count = dc.pm_count();
  UtilizationMap map(map_config, 0);
  const LoadView unfed(&dc, &map, 100 * kMs);
  const PmIndex pm = static_cast<PmIndex>(*placed.pm);
  EXPECT_EQ(unfed.vm_cpu_ghz(1), 0.0);
  EXPECT_EQ(unfed.pm_cpu_utilization(pm), 0.0);
  EXPECT_FALSE(unfed.has_signal(pm)) << "no samples: the planner must not act";

  // A direct per-PM sample is signal and raises (never lowers) the hottest
  // reading past anything the per-VM aggregate implies.
  map.record_pm(pm, 1.2, 100 * kMs);
  const LoadView fed(&dc, &map, 100 * kMs);
  EXPECT_TRUE(fed.has_signal(pm));
  EXPECT_NEAR(fed.pm_hottest_utilization(pm), 1.2, 1e-6);
  EXPECT_EQ(fed.pm_cpu_utilization(pm), 0.0) << "aggregate stays sample-driven";
}

// --- planner rounds through a live service ---------------------------------

class RebalancerServiceTest : public ::testing::Test {
 protected:
  RebalancerServiceTest() : catalog_(ec2_catalog()), tables_(tables_for(catalog_)) {}

  /// A service whose planner exists but whose thread effectively never
  /// fires (interval ~1 h): tests drive run_round(now) deterministically.
  std::unique_ptr<PlacementService> make_service(std::size_t fleet,
                                                 ServiceConfig config = {}) {
    config.rebalance.enabled = true;
    if (config.rebalance.interval_ms == 1000) config.rebalance.interval_ms = 3'600'000;
    return std::make_unique<PlacementService>(catalog_, mixed_pm_fleet(catalog_, fleet),
                                              tables_, std::move(config));
  }

  std::optional<std::uint64_t> lookup_pm(PlacementService& service, std::uint64_t vm) {
    Request request;
    request.op = RequestOp::kLookup;
    request.vm_id = vm;
    const Response response = service.submit(request).get();
    return response.ok ? response.pm : std::nullopt;
  }

  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
};

TEST_F(RebalancerServiceTest, OverloadDrainIsBoundedAndWalDurable) {
  TempDir dir("rebal-wal");
  ServiceConfig config;
  config.data_dir = dir.path();
  config.rebalance.max_moves_per_round = 2;
  config.rebalance.cooldown_ms = 1;
  auto service = make_service(4, std::move(config));
  for (std::uint64_t vm = 1; vm <= 12; ++vm) {
    ASSERT_TRUE(service->execute(place_request(vm, vm % 2)).ok);
  }
  // An anti-collocation pair rides along: planner moves must respect it.
  ASSERT_TRUE(service->execute(place_request(100, 0, "web")).ok);
  ASSERT_TRUE(service->execute(place_request(101, 0, "web")).ok);
  service->start();

  UtilizationMap& map = service->utilization_map();
  const std::uint64_t now = map.epoch_ns() + 1000 * kMs;
  const auto hot = lookup_pm(*service, 1);
  ASSERT_TRUE(hot.has_value());
  for (PmIndex pm = 0; pm < 4; ++pm) {
    map.record_pm(pm, pm == *hot ? 1.3 : 0.3, now);
  }

  RebalancePlanner* planner = service->rebalancer();
  ASSERT_NE(planner, nullptr);
  const std::size_t moves = planner->run_round(now);
  EXPECT_GE(moves, 1u);
  EXPECT_LE(moves, 2u) << "max_moves_per_round is a hard per-round bound";
  const RebalanceStatus status = planner->status();
  EXPECT_EQ(status.rounds, 1u);
  EXPECT_EQ(status.total_moves, moves);
  EXPECT_EQ(status.last_round_moves, moves);
  EXPECT_EQ(service->stats().migrated, moves)
      << "every planner move is an ordinary WAL'd migrate";

  // Crash (no final snapshot) and rebuild: the WAL alone must reproduce the
  // post-migration ledger bit-identically, group constraint included.
  service->stop_now();
  const Datacenter before = service->datacenter();
  ServiceConfig recover_config;
  recover_config.data_dir = dir.path();
  PlacementService recovered(catalog_, mixed_pm_fleet(catalog_, 4), tables_,
                             std::move(recover_config));
  EXPECT_TRUE(recovered.stats().recovered);
  EXPECT_TRUE(datacenter_state_equal(before, recovered.datacenter()));
  const auto pm_a = recovered.datacenter().pm_of(100);
  const auto pm_b = recovered.datacenter().pm_of(101);
  ASSERT_TRUE(pm_a.has_value());
  ASSERT_TRUE(pm_b.has_value());
  EXPECT_NE(*pm_a, *pm_b) << "anti-collocation must survive planner moves + crash";
}

TEST_F(RebalancerServiceTest, ConsolidationDrainsWholeUnderloadedPmOntoUsedPms) {
  ServiceConfig config;
  config.rebalance.max_moves_per_round = 8;
  config.rebalance.underload_threshold = 0.2;
  auto service = make_service(6, std::move(config));
  const std::size_t xlarge = [&] {
    for (std::size_t i = 0; i < catalog_.vm_types().size(); ++i) {
      if (catalog_.vm_type(i).name == "m3.xlarge") return i;
    }
    return std::size_t{0};
  }();
  // Pack enough 15 GiB VMs to use most of the fleet, then trim every PM to
  // two residents: each used PM keeps headroom, so the drained PM's VMs
  // provably fit on the others and only the used-destination rule decides.
  for (std::uint64_t vm = 1; vm <= 18; ++vm) {
    ASSERT_TRUE(service->execute(place_request(vm, xlarge)).ok);
  }
  std::unordered_map<std::uint64_t, std::size_t> residents;
  std::size_t vm_count = 18;
  for (std::uint64_t vm = 1; vm <= 18; ++vm) {
    const auto pm = service->datacenter().pm_of(static_cast<VmId>(vm));
    ASSERT_TRUE(pm.has_value());
    if (++residents[*pm] > 2) {
      Request release;
      release.op = RequestOp::kRelease;
      release.vm_id = vm;
      ASSERT_TRUE(service->execute(release).ok);
      --residents[*pm];
      --vm_count;
    }
  }
  ASSERT_GE(residents.size(), 3u);
  service->start();
  // The emptiest PM (lowest index on ties) gets an underload reading; the
  // rest sit between the thresholds where the planner leaves them alone.
  std::uint64_t cold = 0;
  std::size_t cold_count = SIZE_MAX;
  for (const auto& [pm, count] : residents) {
    if (count < cold_count || (count == cold_count && pm < cold)) {
      cold = pm;
      cold_count = count;
    }
  }
  UtilizationMap& map = service->utilization_map();
  const std::uint64_t now = map.epoch_ns() + 1000 * kMs;
  for (PmIndex pm = 0; pm < 6; ++pm) {
    map.record_pm(pm, pm == cold ? 0.05 : 0.5, now);
  }

  const std::size_t moves = service->rebalancer()->run_round(now);
  EXPECT_EQ(moves, cold_count) << "the whole PM drains or none of it does";
  service->drain();
  EXPECT_FALSE(service->datacenter().pm(static_cast<PmIndex>(cold)).used());
  EXPECT_EQ(service->datacenter().used_pms().size(), residents.size() - 1)
      << "consolidation must land on already-used PMs, shrinking the used set";
  EXPECT_EQ(service->datacenter().vm_count(), vm_count);
}

TEST_F(RebalancerServiceTest, CooldownPreventsPingPong) {
  ServiceConfig config;
  config.rebalance.max_moves_per_round = 8;
  config.rebalance.cooldown_ms = 60'000;
  config.rebalance.underload_threshold = 0.0;  // isolate the overload path
  auto service = make_service(2, std::move(config));
  // Four m3.xlarge (15 GiB) across two PMs: everything fits either PM, so
  // capacity never masks the cooldown behavior under test.
  const std::size_t xlarge = [&] {
    for (std::size_t i = 0; i < catalog_.vm_types().size(); ++i) {
      if (catalog_.vm_type(i).name == "m3.xlarge") return i;
    }
    return std::size_t{0};
  }();
  for (std::uint64_t vm = 1; vm <= 4; ++vm) {
    ASSERT_TRUE(service->execute(place_request(vm, xlarge)).ok);
  }
  service->start();

  UtilizationMap& map = service->utilization_map();
  RebalancePlanner* planner = service->rebalancer();
  const std::uint64_t t0 = map.epoch_ns() + 1000 * kMs;
  const auto hot = lookup_pm(*service, 1);
  ASSERT_TRUE(hot.has_value());
  const std::uint64_t other = *hot == 0 ? 1 : 0;

  map.record_pm(*hot, 1.3, t0);
  map.record_pm(other, 0.3, t0);
  const std::size_t moves1 = planner->run_round(t0);
  ASSERT_GE(moves1, 1u);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> moved;  // vm -> new pm
  for (std::uint64_t vm = 1; vm <= 4; ++vm) {
    const auto pm = lookup_pm(*service, vm);
    ASSERT_TRUE(pm.has_value());
    if (*pm != *hot) moved.emplace_back(vm, *pm);
  }
  ASSERT_EQ(moved.size(), moves1);

  // Reverse the hotspot within the cooldown window: the freshly moved VMs
  // must NOT bounce straight back even though their new PM now reads hot.
  map.record_pm(*hot, 0.3, t0 + kMs);
  map.record_pm(other, 1.3, t0 + kMs);
  planner->run_round(t0 + kMs);
  for (const auto& [vm, pm] : moved) {
    EXPECT_EQ(lookup_pm(*service, vm), std::optional<std::uint64_t>(pm))
        << "vm " << vm << " ping-ponged inside its cooldown";
  }
  EXPECT_GE(
      service->metrics_registry().counter("prvm_rebal_skipped_cooldown_total").value(), 1u)
      << "the blocked eviction must be observable";

  // Past the cooldown the same pressure does move them.
  const std::uint64_t t1 = t0 + (60'000 + 10) * kMs;
  map.record_pm(*hot, 0.3, t1);
  map.record_pm(other, 1.3, t1);
  EXPECT_GE(planner->run_round(t1), 1u) << "expired cooldowns release their VMs";
}

TEST_F(RebalancerServiceTest, PausedPlannerPlansNothing) {
  auto service = make_service(2);
  ASSERT_TRUE(service->execute(place_request(1, 0)).ok);
  service->start();
  UtilizationMap& map = service->utilization_map();
  const std::uint64_t now = map.epoch_ns() + 1000 * kMs;
  const auto hot = lookup_pm(*service, 1);
  ASSERT_TRUE(hot.has_value());
  map.record_pm(*hot, 1.3, now);

  RebalancePlanner* planner = service->rebalancer();
  planner->pause();
  EXPECT_STREQ(planner->state_name(), "paused");
  EXPECT_EQ(planner->run_round(now), 0u);
  EXPECT_EQ(planner->status().rounds, 0u) << "a paused round is not a round";
  planner->resume();
  EXPECT_STREQ(planner->state_name(), "idle");
}

// --- wire surface ----------------------------------------------------------

TEST_F(RebalancerServiceTest, HealthAndRebalanceOpExposeThePlanner) {
  auto enabled = make_service(2);
  const Response health = enabled->execute([] {
    Request r;
    r.op = RequestOp::kHealth;
    return r;
  }());
  ASSERT_TRUE(health.ok);
  const std::string* state = find_extra(health, "rebalance");
  ASSERT_NE(state, nullptr) << "health must report the planner state";
  EXPECT_EQ(*state, "\"idle\"");
  EXPECT_NE(find_extra(health, "rebalance_last_moves"), nullptr);

  Request status;
  status.op = RequestOp::kRebalance;
  const Response s = enabled->execute(status);
  ASSERT_TRUE(s.ok);
  EXPECT_EQ(*find_extra(s, "state"), "\"idle\"");
  EXPECT_NE(find_extra(s, "rounds"), nullptr);
  EXPECT_NE(find_extra(s, "total_moves"), nullptr);

  Request pause = status;
  pause.action = "pause";
  ASSERT_TRUE(enabled->execute(pause).ok);
  EXPECT_EQ(*find_extra(enabled->execute(status), "state"), "\"paused\"");
  Request resume = status;
  resume.action = "resume";
  ASSERT_TRUE(enabled->execute(resume).ok);
  EXPECT_EQ(*find_extra(enabled->execute(status), "state"), "\"idle\"");

  // Planner off: health says so, status says so, steering is an error.
  PlacementService disabled(catalog_, mixed_pm_fleet(catalog_, 2), tables_, {});
  const Response off_health = disabled.execute([] {
    Request r;
    r.op = RequestOp::kHealth;
    return r;
  }());
  EXPECT_EQ(*find_extra(off_health, "rebalance"), "\"off\"");
  const Response off_status = disabled.execute(status);
  EXPECT_TRUE(off_status.ok);
  EXPECT_EQ(*find_extra(off_status, "state"), "\"off\"");
  Request trigger = status;
  trigger.action = "trigger";
  const Response rejected = disabled.execute(trigger);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "rebalance_disabled");
}

TEST_F(RebalancerServiceTest, UtilOpFeedsTheMapAndValidatesItsTarget) {
  auto service = make_service(2);
  service->start();

  Request sample;
  sample.op = RequestOp::kUtil;
  sample.vm_id = 9;
  sample.cpu = 0.75;
  const Response ok = service->submit(sample).get();
  ASSERT_TRUE(ok.ok) << ok.error;
  const auto stored = service->utilization_map().vm_fraction(9, obs::now_ns());
  ASSERT_TRUE(stored.has_value());
  EXPECT_NEAR(*stored, 0.75, 1e-3) << "negligible decay between ingest and read";

  Request pm_sample;
  pm_sample.op = RequestOp::kUtil;
  pm_sample.pm = 1;
  pm_sample.cpu = 0.4;
  EXPECT_TRUE(service->submit(pm_sample).get().ok);

  Request out_of_range;
  out_of_range.op = RequestOp::kUtil;
  out_of_range.pm = 99;
  out_of_range.cpu = 0.4;
  const Response rejected = service->submit(out_of_range).get();
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "bad_field");
  service->drain();
}

TEST(RebalanceProtocolTest, UtilAndRebalanceParsing) {
  auto parsed = [](const std::string& line) { return parse_request(line); };

  auto ok = parsed(R"({"op":"util","vm":7,"cpu":0.83})");
  ASSERT_TRUE(std::holds_alternative<Request>(ok));
  EXPECT_EQ(std::get<Request>(ok).op, RequestOp::kUtil);
  EXPECT_EQ(std::get<Request>(ok).vm_id, 7u);
  EXPECT_DOUBLE_EQ(std::get<Request>(ok).cpu, 0.83);

  auto pm_keyed = parsed(R"({"op":"util","pm":3,"cpu":1.5})");
  ASSERT_TRUE(std::holds_alternative<Request>(pm_keyed));
  EXPECT_EQ(std::get<Request>(pm_keyed).pm, std::optional<std::uint64_t>(3));

  EXPECT_TRUE(std::holds_alternative<ProtocolError>(
      parsed(R"({"op":"util","vm":1,"pm":2,"cpu":0.5})")))
      << "exactly one of vm/pm";
  EXPECT_TRUE(std::holds_alternative<ProtocolError>(parsed(R"({"op":"util","vm":1})")))
      << "cpu required";
  EXPECT_TRUE(
      std::holds_alternative<ProtocolError>(parsed(R"({"op":"util","vm":1,"cpu":2.5})")))
      << "cpu capped at 2";

  auto action = parsed(R"({"op":"rebalance","action":"trigger"})");
  ASSERT_TRUE(std::holds_alternative<Request>(action));
  EXPECT_EQ(std::get<Request>(action).action, "trigger");
  EXPECT_TRUE(std::holds_alternative<ProtocolError>(
      parsed(R"({"op":"rebalance","action":"explode"})")));

  // The planner's scan handoff is process-internal, never a wire op.
  auto scan = parsed(R"({"op":"rebalance_scan"})");
  ASSERT_TRUE(std::holds_alternative<ProtocolError>(scan));
  EXPECT_EQ(std::get<ProtocolError>(scan).code, "unknown_op");
}

TEST(RebalanceConfigTest, ImplausibleThresholdsAreRejectedByName) {
  const Catalog catalog = ec2_catalog();
  auto tables = tables_for(catalog);
  const auto build = [&](RebalanceConfig rebalance) {
    ServiceConfig config;
    config.rebalance = std::move(rebalance);
    config.rebalance.enabled = true;
    PlacementService service(catalog, mixed_pm_fleet(catalog, 2), tables,
                             std::move(config));
  };
  RebalanceConfig bad_overload;
  bad_overload.overload_threshold = 2.0;
  EXPECT_THROW(build(bad_overload), ServiceConfigError);
  RebalanceConfig bad_underload;
  bad_underload.underload_threshold = 0.95;  // >= overload
  EXPECT_THROW(build(bad_underload), ServiceConfigError);
  RebalanceConfig bad_interval;
  bad_interval.interval_ms = 0;
  EXPECT_THROW(build(bad_interval), ServiceConfigError);
  RebalanceConfig bad_moves;
  bad_moves.max_moves_per_round = 0;
  EXPECT_THROW(build(bad_moves), ServiceConfigError);
}

}  // namespace
}  // namespace prvm
