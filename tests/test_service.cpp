// PlacementService behavior: admission control (groups, duplicates, unknown
// types), queue backpressure and batching, graceful drain, and the socket
// front-end end-to-end over TCP — including split writes and hostile frames
// arriving on a live connection.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cluster/catalog.hpp"
#include "core/catalog_graphs.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"
#include "service/socket_server.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

std::shared_ptr<const ScoreTableSet> tables_for(const Catalog& catalog) {
  // Default on-disk cache: each discovered test is its own process, so an
  // in-memory static would rebuild the tables 18 times over.
  return std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
}

Request place_request(std::uint64_t vm, std::size_t type, std::string group = "") {
  Request request;
  request.op = RequestOp::kPlace;
  request.vm_id = vm;
  request.vm_type_index = type;
  request.group = std::move(group);
  return request;
}

Request release_request(std::uint64_t vm) {
  Request request;
  request.op = RequestOp::kRelease;
  request.vm_id = vm;
  return request;
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : catalog_(ec2_catalog()), tables_(tables_for(catalog_)) {}

  std::unique_ptr<PlacementService> make_service(std::size_t fleet_size,
                                                 ServiceConfig config = {}) {
    return std::make_unique<PlacementService>(catalog_, mixed_pm_fleet(catalog_, fleet_size),
                                              tables_, std::move(config));
  }

  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
};

TEST_F(ServiceTest, PlaceReleaseMigrateLifecycle) {
  auto service = make_service(4);
  const Response placed = service->execute(place_request(1, 0));
  ASSERT_TRUE(placed.ok) << placed.error << ": " << placed.message;
  ASSERT_TRUE(placed.pm.has_value());
  EXPECT_EQ(service->datacenter().vm_count(), 1u);

  // Duplicate id is refused before touching the engine.
  const Response duplicate = service->execute(place_request(1, 0));
  EXPECT_FALSE(duplicate.ok);
  EXPECT_EQ(duplicate.error, "duplicate_vm");

  Request migrate;
  migrate.op = RequestOp::kMigrate;
  migrate.vm_id = 1;
  const Response migrated = service->execute(migrate);
  ASSERT_TRUE(migrated.ok) << migrated.error;
  EXPECT_NE(*migrated.pm, *placed.pm) << "migrate must leave the source PM";

  const Response released = service->execute(release_request(1));
  EXPECT_TRUE(released.ok);
  EXPECT_EQ(service->datacenter().vm_count(), 0u);

  const Response missing = service->execute(release_request(1));
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.error, "unknown_vm");
}

TEST_F(ServiceTest, UnknownVmTypeIsRejected) {
  auto service = make_service(2);
  Request by_index = place_request(1, catalog_.vm_types().size() + 5);
  EXPECT_EQ(service->execute(by_index).error, "unknown_vm_type");

  Request by_name;
  by_name.op = RequestOp::kPlace;
  by_name.vm_id = 2;
  by_name.vm_type_name = "no-such-type";
  EXPECT_EQ(service->execute(by_name).error, "unknown_vm_type");

  Request by_real_name;
  by_real_name.op = RequestOp::kPlace;
  by_real_name.vm_id = 3;
  by_real_name.vm_type_name = catalog_.vm_type(0).name;
  EXPECT_TRUE(service->execute(by_real_name).ok);
}

TEST_F(ServiceTest, AntiCollocationGroupSpreadsAcrossPms) {
  auto service = make_service(3);
  std::set<std::uint64_t> pms;
  for (std::uint64_t vm = 1; vm <= 3; ++vm) {
    const Response r = service->execute(place_request(vm, 0, "web"));
    ASSERT_TRUE(r.ok) << r.error << ": " << r.message;
    pms.insert(*r.pm);
  }
  EXPECT_EQ(pms.size(), 3u) << "group members must land on pairwise-distinct PMs";

  // All three PMs now host a member: the group vetoes everything, and the
  // reject reason distinguishes that from a full datacenter.
  const Response conflict = service->execute(place_request(4, 0, "web"));
  ASSERT_FALSE(conflict.ok);
  EXPECT_EQ(conflict.error, "group_conflict");

  // Ungrouped (and other-group) placements still succeed.
  EXPECT_TRUE(service->execute(place_request(5, 0)).ok);
  EXPECT_TRUE(service->execute(place_request(6, 0, "db")).ok);

  // Releasing a member frees its PM for the group again.
  ASSERT_TRUE(service->execute(release_request(1)).ok);
  const Response retry = service->execute(place_request(4, 0, "web"));
  EXPECT_TRUE(retry.ok) << retry.error;
}

TEST_F(ServiceTest, NoCapacityWhenFleetIsFull) {
  auto service = make_service(1);
  std::uint64_t vm = 1;
  Response last;
  for (; vm < 10000; ++vm) {
    last = service->execute(place_request(vm, 0));
    if (!last.ok) break;
  }
  ASSERT_FALSE(last.ok) << "a 1-PM fleet must eventually fill up";
  EXPECT_EQ(last.error, "no_capacity");
}

TEST_F(ServiceTest, QueueBackpressureRejectsWithRetryHint) {
  ServiceConfig config;
  config.queue_capacity = 2;
  config.retry_after_ms = 7.5;
  auto service = make_service(4, config);
  // Worker not started: the queue fills and the third submit bounces
  // immediately instead of blocking.
  auto f1 = service->submit(place_request(1, 0));
  auto f2 = service->submit(place_request(2, 0));
  auto f3 = service->submit(place_request(3, 0));
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const Response rejected = f3.get();
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "queue_full");
  ASSERT_TRUE(rejected.retry_after_ms.has_value());
  EXPECT_DOUBLE_EQ(*rejected.retry_after_ms, 7.5);

  // Once the worker runs, the queued two complete normally.
  service->start();
  EXPECT_TRUE(f1.get().ok);
  EXPECT_TRUE(f2.get().ok);
  service->drain();
  EXPECT_EQ(service->stats().queue_rejected, 1u);
}

TEST_F(ServiceTest, WorkerBatchesQueuedRequests) {
  ServiceConfig config;
  config.batch_size = 8;
  auto service = make_service(8, config);
  std::vector<std::future<Response>> futures;
  for (std::uint64_t vm = 1; vm <= 40; ++vm) {
    futures.push_back(service->submit(place_request(vm, 0)));
  }
  service->start();  // everything is already queued: batches form immediately
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
  service->drain();

  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.placed, 40u);
  EXPECT_GE(stats.max_batch, 2u) << "pre-queued work should drain in batches";
  EXPECT_LE(stats.max_batch, 8u) << "batches must honor batch_size";
  EXPECT_GE(stats.batches, 5u);
}

TEST_F(ServiceTest, DrainStopsAdmittingAndKeepsState) {
  auto service = make_service(4);
  service->start();
  EXPECT_TRUE(service->submit(place_request(1, 0)).get().ok);
  service->drain();
  EXPECT_TRUE(service->draining());

  const Response after = service->submit(place_request(2, 0)).get();
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(after.error, "draining");
  EXPECT_EQ(service->datacenter().vm_count(), 1u);
}

TEST_F(ServiceTest, StopNowFailsQueuedRequestsInsteadOfDroppingThem) {
  auto service = make_service(4);
  // Not started: requests sit in the queue until the hard stop fails them.
  auto f1 = service->submit(place_request(1, 0));
  service->start();
  service->stop_now();
  const Response r = f1.get();  // must be resolved either way — never hangs
  if (!r.ok) EXPECT_EQ(r.error, "draining");
}

// --- Socket front-end -------------------------------------------------------

/// Minimal blocking test client.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ADD_FAILURE() << "connect failed";
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_raw(std::string_view bytes) {
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ::ssize_t n =
          ::send(fd_, bytes.data() + written, bytes.size() - written, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      written += static_cast<std::size_t>(n);
    }
  }

  JsonValue recv_response() {
    while (true) {
      if (const auto frame = buffer_.next()) {
        std::string error;
        auto doc = parse_json(frame->line, &error);
        EXPECT_TRUE(doc.has_value()) << error << " in: " << frame->line;
        return doc.has_value() ? std::move(*doc) : JsonValue{};
      }
      char buf[4096];
      const ::ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed while awaiting response";
        return JsonValue{};
      }
      buffer_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  LineBuffer buffer_;
};

bool response_ok(const JsonValue& doc) {
  const JsonValue* ok = doc.find("ok");
  return ok != nullptr && ok->kind == JsonValue::Kind::kBool && ok->boolean;
}

std::string response_error(const JsonValue& doc) {
  const JsonValue* error = doc.find("error");
  return error != nullptr ? error->string : "";
}

TEST_F(ServiceTest, SocketEndToEndPlaceAndStats) {
  auto service = make_service(4);
  service->start();
  SocketServerConfig socket_config;
  socket_config.tcp_port = 0;  // ephemeral: parallel test runs cannot collide
  SocketServer server(*service, socket_config);
  server.start();
  ASSERT_GT(server.port(), 0);

  {
    TestClient client(server.port());
    client.send_raw("{\"op\":\"place\",\"vm\":1,\"type\":0}\n");
    const JsonValue placed = client.recv_response();
    EXPECT_TRUE(response_ok(placed));
    ASSERT_NE(placed.find("pm"), nullptr);

    // Split write: half a frame, then the rest plus a second frame. The
    // responses arrive in order, one per line.
    client.send_raw("{\"op\":\"place\",\"vm\":2,");
    client.send_raw("\"type\":0}\n{\"op\":\"stats\"}\n");
    EXPECT_TRUE(response_ok(client.recv_response()));
    const JsonValue stats = client.recv_response();
    EXPECT_TRUE(response_ok(stats));
    ASSERT_NE(stats.find("vm_count"), nullptr);
    EXPECT_EQ(stats.find("vm_count")->number, 2.0);
  }
  server.stop();
  service->drain();
}

TEST_F(ServiceTest, SocketSurvivesHostileFrames) {
  auto service = make_service(4);
  service->start();
  SocketServerConfig socket_config;
  socket_config.tcp_port = 0;
  SocketServer server(*service, socket_config);
  server.start();

  {
    TestClient client(server.port());
    // Malformed JSON: structured error, connection stays up.
    client.send_raw("this is not json\n");
    EXPECT_EQ(response_error(client.recv_response()), "bad_json");

    // Unknown op.
    client.send_raw("{\"op\":\"selfdestruct\"}\n");
    EXPECT_EQ(response_error(client.recv_response()), "unknown_op");

    // Oversized frame: discarded with an error, stream resyncs at newline.
    std::string huge = "{\"op\":\"place\",\"vm\":1,\"pad\":\"";
    huge.append(kMaxFrameBytes + 10, 'x');
    huge += "\"}\n";
    client.send_raw(huge);
    EXPECT_EQ(response_error(client.recv_response()), "oversized_frame");

    // The connection still serves real requests afterwards.
    client.send_raw("{\"op\":\"place\",\"vm\":3,\"type\":0}\n");
    EXPECT_TRUE(response_ok(client.recv_response()));
  }
  server.stop();
  service->drain();
}

TEST_F(ServiceTest, SocketPipelinedRequestsKeepOrder) {
  auto service = make_service(8);
  service->start();
  SocketServerConfig socket_config;
  socket_config.tcp_port = 0;
  SocketServer server(*service, socket_config);
  server.start();

  {
    TestClient client(server.port());
    std::string burst;
    for (int vm = 1; vm <= 50; ++vm) {
      burst += "{\"op\":\"place\",\"vm\":" + std::to_string(vm) + ",\"type\":0}\n";
    }
    client.send_raw(burst);
    for (int vm = 1; vm <= 50; ++vm) {
      const JsonValue doc = client.recv_response();
      ASSERT_NE(doc.find("vm"), nullptr);
      EXPECT_EQ(doc.find("vm")->number, static_cast<double>(vm))
          << "responses must keep request order";
    }
  }
  server.stop();
  service->drain();
}

// --- Observability ----------------------------------------------------------

/// Executes a no-argument op and returns the wire-encoded response, parsed —
/// the same bytes a socket client would see.
JsonValue exec_parsed(PlacementService& service, RequestOp op) {
  Request request;
  request.op = op;
  std::string error;
  auto doc = parse_json(encode_response(service.execute(request)), &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return doc.has_value() ? std::move(*doc) : JsonValue{};
}

TEST_F(ServiceTest, HealthResponseKeepsBackwardCompatibleShape) {
  auto service = make_service(4);
  ASSERT_TRUE(service->execute(place_request(1, 0)).ok);
  ASSERT_TRUE(service->execute(place_request(2, 0)).ok);

  // The health shape predates the metrics registry; monitoring keys on these
  // exact names and semantics, so migrating the counters onto the registry
  // must not move or rename them.
  const JsonValue health = exec_parsed(*service, RequestOp::kHealth);
  EXPECT_TRUE(response_ok(health));
  ASSERT_NE(health.find("mode"), nullptr);
  EXPECT_EQ(health.find("mode")->string, "ok");
  for (const char* key : {"queue_depth", "wal_lag", "op_seq", "degraded_entries",
                          "storage_probes", "io_errors"}) {
    ASSERT_NE(health.find(key), nullptr) << key;
    EXPECT_EQ(health.find(key)->kind, JsonValue::Kind::kNumber) << key;
  }
  ASSERT_NE(health.find("last_error"), nullptr);
  EXPECT_EQ(health.find("op_seq")->number, 2.0);
  EXPECT_EQ(health.find("queue_depth")->number, 0.0);
  EXPECT_EQ(health.find("degraded_entries")->number, 0.0);
  EXPECT_EQ(health.find("io_errors")->number, 0.0);
  EXPECT_EQ(health.find("last_error")->string, "");

  // The multi-cell additions extend the shape without moving anything: a
  // daemon with no cell_id reports cell 0 with role "single".
  ASSERT_NE(health.find("cell_id"), nullptr);
  EXPECT_EQ(health.find("cell_id")->number, 0.0);
  ASSERT_NE(health.find("role"), nullptr);
  EXPECT_EQ(health.find("role")->string, "single");
}

TEST_F(ServiceTest, MetricsOpReportsRegistryState) {
  auto service = make_service(4);
  for (std::uint64_t vm = 1; vm <= 3; ++vm) {
    ASSERT_TRUE(service->execute(place_request(vm, 0)).ok);
  }
  ASSERT_TRUE(service->execute(release_request(3)).ok);
  EXPECT_EQ(service->execute(place_request(1, 0)).error, "duplicate_vm");

  const JsonValue doc = exec_parsed(*service, RequestOp::kMetrics);
  EXPECT_TRUE(response_ok(doc));
  const JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->kind, JsonValue::Kind::kObject);

  const JsonValue* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("prvm_ops_placed_total"), nullptr);
  EXPECT_EQ(counters->find("prvm_ops_placed_total")->number, 3.0);
  EXPECT_EQ(counters->find("prvm_ops_released_total")->number, 1.0);
  // prvm_ops_rejected_total keeps the stats-op semantics (engine-level
  // rejections only); admission rejects show up per reason instead.
  EXPECT_EQ(counters->find("prvm_ops_rejected_total")->number, 0.0);
  ASSERT_NE(counters->find("prvm_reject_duplicate_vm_total"), nullptr);
  EXPECT_EQ(counters->find("prvm_reject_duplicate_vm_total")->number, 1.0);
  // The engine reports into the same registry as its owning service.
  ASSERT_NE(counters->find("prvm_engine_place_total"), nullptr);
  EXPECT_GE(counters->find("prvm_engine_place_total")->number, 3.0);

  const JsonValue* gauges = metrics->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("prvm_mode"), nullptr);
  EXPECT_NE(gauges->find("prvm_queue_depth"), nullptr);

  const JsonValue* histograms = metrics->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* compute = histograms->find("prvm_place_compute_ns");
  ASSERT_NE(compute, nullptr);
  EXPECT_GE(compute->find("count")->number, 3.0);
  const double p50 = compute->find("p50")->number;
  const double p99 = compute->find("p99")->number;
  const double p999 = compute->find("p999")->number;
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
}

TEST_F(ServiceTest, MetricsRegistriesIsolateServicesAndAcceptInjection) {
  // Default: each service gets a private registry, so parallel services in
  // one process (tests!) never bleed counters into each other. An injected
  // registry (the daemon passes the global one) is used as-is.
  auto shared = std::make_shared<obs::Registry>();
  ServiceConfig injected;
  injected.metrics = shared;
  auto a = make_service(4, injected);
  auto b = make_service(4);
  ASSERT_TRUE(a->execute(place_request(1, 0)).ok);
  ASSERT_TRUE(a->execute(place_request(2, 0)).ok);
  ASSERT_TRUE(b->execute(place_request(1, 0)).ok);

  EXPECT_EQ(&a->metrics_registry(), shared.get());
  EXPECT_NE(&a->metrics_registry(), &b->metrics_registry());
  ASSERT_NE(shared->find_counter("prvm_ops_placed_total"), nullptr);
  EXPECT_EQ(shared->find_counter("prvm_ops_placed_total")->value(), 2u);
  ASSERT_NE(b->metrics_registry().find_counter("prvm_ops_placed_total"), nullptr);
  EXPECT_EQ(b->metrics_registry().find_counter("prvm_ops_placed_total")->value(), 1u);
}

}  // namespace
}  // namespace prvm
