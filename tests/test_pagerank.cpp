#include "pagerank/pagerank.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "pagerank/graph.hpp"

namespace prvm {
namespace {

TEST(Digraph, BuildAndQuery) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(2), 0u);
  const NodeId n = g.add_node();
  EXPECT_EQ(n, 3u);
}

TEST(Digraph, FinalizePreservesAdjacency) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 3);
  g.add_edge(2, 0);
  std::vector<std::vector<NodeId>> before;
  for (NodeId u = 0; u < 4; ++u) {
    auto s = g.successors(u);
    before.emplace_back(s.begin(), s.end());
  }
  g.finalize();
  EXPECT_TRUE(g.finalized());
  for (NodeId u = 0; u < 4; ++u) {
    auto s = g.successors(u);
    EXPECT_EQ(std::vector<NodeId>(s.begin(), s.end()), before[u]);
  }
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_node(), std::invalid_argument);
}

TEST(Digraph, EdgeValidation) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::invalid_argument);
  EXPECT_THROW(g.successors(5), std::invalid_argument);
}

TEST(TopologicalOrder, LinearChain) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(topological_order(g), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(TopologicalOrder, RespectsAllEdges) {
  Digraph g(6);
  g.add_edge(5, 2);
  g.add_edge(5, 0);
  g.add_edge(4, 0);
  g.add_edge(4, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  const auto order = topological_order(g);
  std::vector<std::size_t> pos(6);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v : g.successors(u)) EXPECT_LT(pos[u], pos[v]);
  }
}

TEST(TopologicalOrder, DetectsCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_THROW(topological_order(g), std::invalid_argument);
}

TEST(CountPaths, DiamondGraph) {
  // 0 -> {1,2} -> 3: two paths from 0 to 3.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto counts = count_paths_to(g, 3);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);  // empty path
}

TEST(CountPaths, UnreachableNodesAreZero) {
  Digraph g(3);
  g.add_edge(0, 1);
  const auto counts = count_paths_to(g, 1);
  EXPECT_EQ(counts[2], 0u);
}

TEST(PageRank, UniformOnSymmetricCycleFreeGraph) {
  // Two disconnected nodes: rank must stay uniform.
  Digraph g(2);
  const auto result = compute_pagerank(g);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.scores[0], 0.5);
  EXPECT_DOUBLE_EQ(result.scores[1], 0.5);
}

TEST(PageRank, SinkReceivesMoreThanSource) {
  Digraph g(2);
  g.add_edge(0, 1);
  const auto result = compute_pagerank(g);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.scores[1], result.scores[0]);
}

TEST(PageRank, ScoresSumToOneAndNonNegative) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto result = compute_pagerank(g);
  double sum = 0.0;
  for (double s : result.scores) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRank, StarCenterAnalyticValue) {
  // n-1 leaves all pointing at node 0; no out-edges from 0 (dangling).
  // Algorithm 1 normalizes every iteration, so the fixed point satisfies
  // c = (b + (n-1) d l) / lambda, l = b / lambda with
  // lambda = n b + (n-1) d l, b = (1-d)/n. Eliminating l gives
  // lambda^2 - n b lambda - (n-1) d b = 0 and c/l = 1 + (n-1) d / lambda.
  const std::size_t n = 5;
  const double d = 0.85;
  Digraph g(n);
  for (NodeId u = 1; u < n; ++u) g.add_edge(u, 0);
  PageRankOptions options;
  options.damping = d;
  const auto result = compute_pagerank(g, options);
  ASSERT_TRUE(result.converged);
  const double b = (1.0 - d) / static_cast<double>(n);
  const double nb = static_cast<double>(n) * b;
  const double lambda =
      (nb + std::sqrt(nb * nb + 4.0 * (n - 1) * d * b)) / 2.0;
  const double expected_ratio = 1.0 + (n - 1) * d / lambda;
  EXPECT_NEAR(result.scores[0] / result.scores[1], expected_ratio, 1e-6);
}

TEST(PageRank, DampingZeroGivesTeleportOnly) {
  Digraph g(3);
  g.add_edge(0, 1);
  PageRankOptions options;
  options.damping = 0.0;
  const auto result = compute_pagerank(g, options);
  for (double s : result.scores) EXPECT_NEAR(s, 1.0 / 3.0, 1e-12);
}

TEST(PageRank, RespectsIterationBudget) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  PageRankOptions options;
  options.max_iterations = 1;
  options.epsilon = 1e-300;  // unreachable
  const auto result = compute_pagerank(g, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 1);
}

TEST(PageRank, PersonalizedTeleportConcentratesRank) {
  // Cycle 2 -> 1 -> 0 -> 2 (no dangling leak, so normalization is a no-op)
  // with teleport pinned at node 2: rank decays with distance from the
  // teleport node.
  Digraph g(3);
  g.add_edge(2, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 2);
  std::vector<double> teleport{0.0, 0.0, 1.0};
  const auto result = compute_pagerank(g, {}, teleport);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.scores[2], result.scores[1]);
  EXPECT_GT(result.scores[1], result.scores[0]);
  // Exact geometric fixed point: PR1 = d PR2, PR0 = d PR1.
  EXPECT_NEAR(result.scores[1], 0.85 * result.scores[2], 1e-9);
  EXPECT_NEAR(result.scores[0], 0.85 * result.scores[1], 1e-9);
}

TEST(PageRank, DanglingLeakAmplifiesDownstreamUnderTeleport) {
  // The same chain WITHOUT the closing edge: node 0 dangles, every
  // iteration loses mass and the normalization rescales by lambda < 1,
  // which inverts the gradient (d/lambda > 1). This is a deliberate
  // property of running Algorithm 1's normalized loop with a personalized
  // teleport; the score-table build relies on the profile DAG's structure
  // (branching division) rather than on monotone decay.
  Digraph g(3);
  g.add_edge(2, 1);
  g.add_edge(1, 0);
  std::vector<double> teleport{0.0, 0.0, 1.0};
  const auto result = compute_pagerank(g, {}, teleport);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.scores[0], result.scores[1]);
  EXPECT_GT(result.scores[1], result.scores[2]);
}

TEST(PageRank, TeleportValidation) {
  Digraph g(2);
  std::vector<double> wrong_size{1.0};
  EXPECT_THROW(compute_pagerank(g, {}, wrong_size), std::invalid_argument);
  std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(compute_pagerank(g, {}, negative), std::invalid_argument);
  std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(compute_pagerank(g, {}, zero), std::invalid_argument);
}

TEST(PageRank, OptionValidation) {
  Digraph g(1);
  PageRankOptions bad;
  bad.damping = 1.0;
  EXPECT_THROW(compute_pagerank(g, bad), std::invalid_argument);
  bad = {};
  bad.epsilon = 0.0;
  EXPECT_THROW(compute_pagerank(g, bad), std::invalid_argument);
  bad = {};
  bad.max_iterations = 0;
  EXPECT_THROW(compute_pagerank(g, bad), std::invalid_argument);
  EXPECT_THROW(compute_pagerank(Digraph(0)), std::invalid_argument);
}

}  // namespace
}  // namespace prvm
