#include "sim/lifecycle.hpp"

#include <gtest/gtest.h>

#include "core/catalog_graphs.hpp"
#include "placement/algorithm_factory.hpp"

namespace prvm {
namespace {

LifecycleOptions small_options() {
  LifecycleOptions options;
  options.epochs = 60;
  options.arrivals_per_epoch = 2.0;
  options.mean_lifetime_epochs = 15.0;
  options.seed = 42;
  return options;
}

TEST(Lifecycle, RunsAndBalancesArrivalsDepartures) {
  const Catalog catalog = geni_catalog();
  LifecycleSimulation sim(Datacenter(catalog, std::vector<std::size_t>(40, 0)),
                          small_options());
  FirstFit ff;
  const LifecycleMetrics metrics = sim.run(ff);
  EXPECT_GT(metrics.arrivals, 60u);  // ~2/epoch
  EXPECT_GT(metrics.departures, 0u);
  EXPECT_LE(metrics.departures + metrics.rejected, metrics.arrivals);
  // Population conservation: still-active VMs = arrivals - departures - rejected.
  EXPECT_EQ(sim.datacenter().vm_count(),
            metrics.arrivals - metrics.departures - metrics.rejected);
  EXPECT_GT(metrics.peak_vms, 0u);
  EXPECT_GE(metrics.peak_used_pms, 1u);
  EXPECT_GT(metrics.mean_used_pms, 0.0);
  EXPECT_GE(metrics.mean_fragmentation, 0.0);
  EXPECT_LE(metrics.mean_fragmentation, 1.0);
  EXPECT_FALSE(metrics.describe().empty());
}

TEST(Lifecycle, DeterministicForSameSeed) {
  const Catalog catalog = geni_catalog();
  LifecycleMetrics first;
  for (int run = 0; run < 2; ++run) {
    LifecycleSimulation sim(Datacenter(catalog, std::vector<std::size_t>(40, 0)),
                            small_options());
    BestFit bf;
    const LifecycleMetrics metrics = sim.run(bf);
    if (run == 0) {
      first = metrics;
    } else {
      EXPECT_EQ(metrics.arrivals, first.arrivals);
      EXPECT_EQ(metrics.departures, first.departures);
      EXPECT_DOUBLE_EQ(metrics.mean_used_pms, first.mean_used_pms);
      EXPECT_DOUBLE_EQ(metrics.mean_fragmentation, first.mean_fragmentation);
    }
  }
}

TEST(Lifecycle, RejectsWhenFleetSaturates) {
  const Catalog catalog = geni_catalog();
  LifecycleOptions options = small_options();
  options.arrivals_per_epoch = 10.0;
  options.mean_lifetime_epochs = 1000.0;  // essentially nobody leaves
  LifecycleSimulation sim(Datacenter(catalog, std::vector<std::size_t>(2, 0)), options);
  FirstFit ff;
  const LifecycleMetrics metrics = sim.run(ff);
  EXPECT_GT(metrics.rejected, 0u);
}

TEST(Lifecycle, SingleUseAndValidation) {
  const Catalog catalog = geni_catalog();
  LifecycleSimulation sim(Datacenter(catalog, std::vector<std::size_t>(4, 0)),
                          small_options());
  FirstFit ff;
  sim.run(ff);
  EXPECT_THROW(sim.run(ff), std::invalid_argument);

  LifecycleOptions bad = small_options();
  bad.epochs = 0;
  EXPECT_THROW(LifecycleSimulation(Datacenter(catalog, {0}), bad), std::invalid_argument);
  bad = small_options();
  bad.mean_lifetime_epochs = 0.5;
  EXPECT_THROW(LifecycleSimulation(Datacenter(catalog, {0}), bad), std::invalid_argument);
  bad = small_options();
  bad.vm_mix = {1.0};  // wrong size for 2 VM types
  EXPECT_THROW(LifecycleSimulation(Datacenter(catalog, {0}), bad), std::invalid_argument);
}

TEST(Lifecycle, PackersBeatSpreadersOnMeanPms) {
  const Catalog catalog = geni_catalog();
  LifecycleOptions options = small_options();
  options.epochs = 150;
  options.arrivals_per_epoch = 3.0;
  options.mean_lifetime_epochs = 30.0;

  auto run_with = [&](AlgorithmKind kind) {
    auto tables = std::make_shared<const ScoreTableSet>(
        build_score_tables(catalog, {}, std::nullopt));
    LifecycleSimulation sim(Datacenter(catalog, std::vector<std::size_t>(60, 0)), options);
    auto algorithm = make_algorithm(kind, tables);
    return sim.run(*algorithm);
  };
  const LifecycleMetrics spread = run_with(AlgorithmKind::kRoundRobin);
  const LifecycleMetrics packed = run_with(AlgorithmKind::kPageRankVm);
  EXPECT_LT(packed.mean_used_pms, spread.mean_used_pms);
  EXPECT_LT(packed.mean_fragmentation, spread.mean_fragmentation);
}

TEST(Lifecycle, ConstraintsStillHoldAfterChurn) {
  const Catalog catalog = geni_catalog();
  LifecycleOptions options = small_options();
  options.epochs = 120;
  LifecycleSimulation sim(Datacenter(catalog, std::vector<std::size_t>(30, 0)), options);
  CompVm comp;
  sim.run(comp);
  const Datacenter& dc = sim.datacenter();
  for (PmIndex i = 0; i < dc.pm_count(); ++i) {
    const auto& pm = dc.pm(i);
    const ProfileShape& shape = dc.shape_of(i);
    std::vector<int> replay(static_cast<std::size_t>(shape.total_dims()), 0);
    for (const auto& placed : pm.vms) {
      for (auto [dim, amount] : placed.assignments) {
        replay[static_cast<std::size_t>(dim)] += amount;
      }
    }
    for (int d = 0; d < shape.total_dims(); ++d) {
      EXPECT_EQ(replay[static_cast<std::size_t>(d)], pm.usage.level(d));
      EXPECT_LE(pm.usage.level(d), shape.dim_capacity(d));
    }
  }
}

}  // namespace
}  // namespace prvm
