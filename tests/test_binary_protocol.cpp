// PRVB1 binary codec (DESIGN.md §10): every wire op must round-trip to the
// exact Request struct the JSON parser produces, responses must round-trip
// losslessly (extras included), and hostile input must mirror LineBuffer
// semantics — every framed damage (bad CRC, oversized header) is its own
// structured report so each damaged pipelined request consumes exactly one
// response slot, unframed garbage collapses to one report per run, and the
// stream always resynchronizes cleanly.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "service/binary_protocol.hpp"
#include "service/protocol.hpp"

namespace prvm {
namespace {

Request place_request(std::uint64_t vm, std::size_t type, std::string group = "") {
  Request request;
  request.op = RequestOp::kPlace;
  request.vm_id = vm;
  request.vm_type_index = type;
  request.group = std::move(group);
  return request;
}

Request vm_request(RequestOp op, std::uint64_t vm) {
  Request request;
  request.op = op;
  request.vm_id = vm;
  return request;
}

/// Every wire-encodable request shape (the JSON round-trip test's list plus
/// util, rebalance and the replication ops).
std::vector<Request> wire_requests() {
  std::vector<Request> requests;
  requests.push_back(place_request(7, 2, "web"));
  requests.push_back(place_request(8, 0));
  requests.push_back(vm_request(RequestOp::kRelease, 3));
  requests.push_back(vm_request(RequestOp::kMigrate, 4));
  requests.push_back(vm_request(RequestOp::kLookup, 5));
  for (const RequestOp op :
       {RequestOp::kStats, RequestOp::kHealth, RequestOp::kMetrics, RequestOp::kDrain,
        RequestOp::kPromote}) {
    Request request;
    request.op = op;
    requests.push_back(request);
  }
  {
    Request request;
    request.op = RequestOp::kGroupReserve;
    request.vm_id = 9;
    request.group = "g \"quoted\"";
    requests.push_back(request);
    request.op = RequestOp::kGroupCommit;
    request.cell = 3;
    requests.push_back(request);
    request.op = RequestOp::kGroupAbort;
    request.cell.reset();
    requests.push_back(request);
  }
  Request by_name;
  by_name.op = RequestOp::kPlace;
  by_name.vm_id = 11;
  by_name.vm_type_name = "m3.xlarge";
  requests.push_back(by_name);
  {
    Request util;
    util.op = RequestOp::kUtil;
    util.vm_id = 12;
    util.cpu = 0.8125;
    requests.push_back(util);
    util.vm_id = 0;
    util.pm = 4;
    requests.push_back(util);
  }
  {
    Request rebalance;
    rebalance.op = RequestOp::kRebalance;
    requests.push_back(rebalance);
    rebalance.action = "trigger";
    requests.push_back(rebalance);
  }
  {
    Request hello;
    hello.op = RequestOp::kReplHello;
    hello.seq = 41;
    requests.push_back(hello);
    Request snap;
    snap.op = RequestOp::kReplSnapshot;
    snap.seq = 42;
    snap.offset = 128;
    snap.eof = true;
    snap.data = "deadbeef";
    requests.push_back(snap);
    Request frames;
    frames.op = RequestOp::kReplFrames;
    frames.seq = 43;
    frames.data = "cafe";
    requests.push_back(frames);
    Request promote;
    promote.op = RequestOp::kPromote;
    promote.seq = 44;
    requests.push_back(promote);
  }
  return requests;
}

/// Decodes exactly one intact frame out of `bytes`; the payload is copied
/// into `storage` so it outlives the function-local frame buffer.
BinaryFrameBuffer::Frame one_frame(std::string_view bytes, std::string& storage) {
  BinaryFrameBuffer frames;
  frames.feed(bytes);
  const auto frame = frames.next();
  if (!frame.has_value()) {
    ADD_FAILURE() << "expected one complete frame";
    return {};
  }
  storage.assign(frame->payload);
  BinaryFrameBuffer::Frame copy = *frame;
  copy.payload = storage;
  return copy;
}

void put_u64_le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void expect_same_request(const Request& a, const Request& b, const char* what) {
  EXPECT_EQ(a.op, b.op) << what;
  EXPECT_EQ(a.vm_id, b.vm_id) << what;
  EXPECT_EQ(a.vm_type_index, b.vm_type_index) << what;
  EXPECT_EQ(a.vm_type_name, b.vm_type_name) << what;
  EXPECT_EQ(a.group, b.group) << what;
  EXPECT_EQ(a.cell, b.cell) << what;
  EXPECT_EQ(a.seq, b.seq) << what;
  EXPECT_EQ(a.offset, b.offset) << what;
  EXPECT_EQ(a.eof, b.eof) << what;
  EXPECT_EQ(a.data, b.data) << what;
  EXPECT_EQ(a.pm, b.pm) << what;
  EXPECT_EQ(a.cpu, b.cpu) << what;
  EXPECT_EQ(a.action, b.action) << what;
}

TEST(BinaryProtocol, RequestRoundTripsEveryOpIdenticallyToJson) {
  const BinaryStringTable empty_table;
  for (const Request& request : wire_requests()) {
    std::string encoded;
    encode_binary_request_into(request, encoded);
    std::string storage;
    const auto frame = one_frame(encoded, storage);
    ASSERT_EQ(frame.status, BinaryFrameBuffer::Status::kOk);
    ASSERT_EQ(frame.kind, BinaryFrameKind::kRequest);
    const auto parsed = parse_binary_request(frame.payload, empty_table);
    const Request* binary_round = std::get_if<Request>(&parsed);
    ASSERT_NE(binary_round, nullptr)
        << to_string(request.op) << ": " << std::get<ProtocolError>(parsed).message;

    // The differential anchor: the JSON parse of the JSON encode and the
    // binary parse of the binary encode must agree field for field.
    const std::string line = encode_request(request);
    const auto json_parsed = parse_request(std::string_view(line).substr(0, line.size() - 1));
    const Request* json_round = std::get_if<Request>(&json_parsed);
    ASSERT_NE(json_round, nullptr) << line;
    expect_same_request(*binary_round, *json_round, to_string(request.op));
  }
}

TEST(BinaryProtocol, ResponseRoundTripsLosslessIncludingExtras) {
  std::vector<Response> responses;
  {
    Response ok;
    ok.ok = true;
    ok.op = "place";
    ok.vm = 7;
    ok.pm = 12;
    responses.push_back(ok);
  }
  {
    Response rejected;
    rejected.ok = false;
    rejected.op = "place";
    rejected.vm = 9;
    rejected.error = "no_capacity";
    rejected.message = "no PM fits \"m3.xlarge\"";
    responses.push_back(rejected);
  }
  {
    Response busy;
    busy.ok = false;
    busy.error = "queue_full";
    busy.retry_after_ms = 5.25;
    responses.push_back(busy);
  }
  {
    Response stats;
    stats.ok = true;
    stats.op = "stats";
    stats.extra.emplace_back("used_pms", "17");
    stats.extra.emplace_back("state_digest", "\"123456789\"");
    stats.extra.emplace_back("role", "\"leader\"");
    responses.push_back(stats);
  }
  {
    Response odd;
    odd.ok = true;
    odd.op = "custom_op_name";  // op outside the wire table travels inline
    responses.push_back(odd);
  }
  for (const Response& response : responses) {
    std::string encoded;
    encode_binary_response_into(response, encoded);
    std::string storage;
    const auto frame = one_frame(encoded, storage);
    ASSERT_EQ(frame.status, BinaryFrameBuffer::Status::kOk);
    ASSERT_EQ(frame.kind, BinaryFrameKind::kResponse);
    std::string error;
    const auto round = parse_binary_response(frame.payload, &error);
    ASSERT_TRUE(round.has_value()) << error;
    EXPECT_EQ(round->ok, response.ok);
    EXPECT_EQ(round->op, response.op);
    EXPECT_EQ(round->vm, response.vm);
    EXPECT_EQ(round->pm, response.pm);
    EXPECT_EQ(round->error, response.error);
    EXPECT_EQ(round->message, response.message);
    EXPECT_EQ(round->retry_after_ms, response.retry_after_ms);
    EXPECT_EQ(round->extra, response.extra);
  }
}

TEST(BinaryProtocol, InternSlotsResolveAndUnknownSlotIsBadField) {
  BinaryStringTable table;
  std::string intern;
  append_intern_frame(5, "c5.2xlarge", intern);
  std::string storage;
  const auto frame = one_frame(intern, storage);
  ASSERT_EQ(frame.kind, BinaryFrameKind::kIntern);
  const auto parsed_intern = parse_intern(frame.payload);
  ASSERT_TRUE(parsed_intern.has_value());
  EXPECT_TRUE(table.install(parsed_intern->first, parsed_intern->second));

  Request place;
  place.op = RequestOp::kPlace;
  place.vm_id = 1;
  place.vm_type_name = "c5.2xlarge";
  std::string by_slot;
  encode_binary_request_into(place, by_slot, 5);
  const auto slot_frame = one_frame(by_slot, storage);
  const auto via_slot = parse_binary_request(slot_frame.payload, table);
  const Request* round = std::get_if<Request>(&via_slot);
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->vm_type_name, "c5.2xlarge");

  // Same bytes against a table that never interned the slot: bad_field, the
  // same code JSON type confusion reports — never a crash or a wrong type.
  const BinaryStringTable empty;
  const auto unknown = parse_binary_request(slot_frame.payload, empty);
  const ProtocolError* error = std::get_if<ProtocolError>(&unknown);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, "bad_field");

  // The table cap is enforced at install time.
  EXPECT_FALSE(table.install(BinaryStringTable::kMaxSlots, "overflow"));
}

TEST(BinaryProtocol, ValidationMatchesJsonErrorCodes) {
  const BinaryStringTable table;
  const auto code_of = [&](const Request& request) {
    std::string encoded;
    encode_binary_request_into(request, encoded);
    std::string storage;
    const auto frame = one_frame(encoded, storage);
    const auto parsed = parse_binary_request(frame.payload, table);
    const ProtocolError* error = std::get_if<ProtocolError>(&parsed);
    return error != nullptr ? error->code : std::string("(accepted)");
  };

  // A type-less place cannot come out of the encoder (it always sends an
  // index for a name-less place); build the payload by hand: op 1 (place),
  // field bits = vm only.
  {
    std::string payload;
    payload.push_back(1);     // op code: place
    payload.push_back(0x01);  // field bits: vm
    payload.push_back(0);     // string bits
    payload.push_back(0);     // reserved
    put_u64_le(payload, 1);   // vm
    const auto parsed = parse_binary_request(payload, table);
    const ProtocolError* error = std::get_if<ProtocolError>(&parsed);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->code, "missing_field");
  }

  Request no_group;
  no_group.op = RequestOp::kGroupReserve;
  no_group.vm_id = 2;
  EXPECT_EQ(code_of(no_group), "missing_field");

  Request no_cell;
  no_cell.op = RequestOp::kGroupCommit;
  no_cell.vm_id = 2;
  no_cell.group = "g";
  EXPECT_EQ(code_of(no_cell), "missing_field");

  Request big_vm = place_request(0x1'0000'0000ull, 0);
  EXPECT_EQ(code_of(big_vm), "bad_field");  // vm must fit 32 bits, like JSON

  Request bad_cpu;
  bad_cpu.op = RequestOp::kUtil;
  bad_cpu.vm_id = 3;
  bad_cpu.cpu = 2.5;
  EXPECT_EQ(code_of(bad_cpu), "bad_field");

  // A vm+pm util conflict cannot come out of the encoder either (a pm-keyed
  // util never sends the vm): op 16 (util), field bits = vm|pm|cpu.
  {
    std::string payload;
    payload.push_back(16);    // op code: util
    payload.push_back(0x23);  // field bits: vm | pm | cpu
    payload.push_back(0);     // string bits
    payload.push_back(0);     // reserved
    put_u64_le(payload, 3);   // vm
    put_u64_le(payload, 4);   // pm
    put_u64_le(payload, 0x3FE0000000000000ull);  // cpu = 0.5 as f64 bits
    const auto parsed = parse_binary_request(payload, table);
    const ProtocolError* error = std::get_if<ProtocolError>(&parsed);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->code, "bad_field");
  }

  Request bad_action;
  bad_action.op = RequestOp::kRebalance;
  bad_action.action = "explode";
  EXPECT_EQ(code_of(bad_action), "bad_field");

  Request no_seq;
  no_seq.op = RequestOp::kReplHello;
  EXPECT_EQ(code_of(no_seq), "missing_field");

  // The internal scan op has no wire code: it encodes to op 0, which must
  // decode as unknown_op — kRebalanceScan can never cross a socket.
  Request scan;
  scan.op = RequestOp::kRebalanceScan;
  EXPECT_EQ(code_of(scan), "unknown_op");
}

TEST(BinaryProtocol, FrameBufferReassemblesArbitraryChunks) {
  const std::vector<Request> requests = wire_requests();
  std::string stream;
  for (const Request& request : requests) encode_binary_request_into(request, stream);

  Rng rng(0xb17e5u);
  for (int round = 0; round < 50; ++round) {
    BinaryFrameBuffer frames;
    const BinaryStringTable table;
    std::size_t decoded = 0;
    std::size_t fed = 0;
    while (true) {
      while (const auto frame = frames.next()) {
        ASSERT_EQ(frame->status, BinaryFrameBuffer::Status::kOk);
        const auto parsed = parse_binary_request(frame->payload, table);
        const Request* round_trip = std::get_if<Request>(&parsed);
        ASSERT_NE(round_trip, nullptr);
        ASSERT_LT(decoded, requests.size());
        expect_same_request(*round_trip, requests[decoded], "chunked");
        ++decoded;
      }
      if (fed >= stream.size()) break;
      const std::size_t chunk = std::min<std::size_t>(
          stream.size() - fed, 1 + rng.uniform_index(7));
      frames.feed(std::string_view(stream).substr(fed, chunk));
      fed += chunk;
    }
    EXPECT_EQ(decoded, requests.size());
  }
}

TEST(BinaryProtocol, GarbagePrefixIsReportedOnceAndStreamResyncs) {
  std::string stream = "GET / HTTP/1.1\r\n\r\n";  // never a PRVB1 header
  Request place = place_request(21, 1);
  encode_binary_request_into(place, stream);

  BinaryFrameBuffer frames;
  frames.feed(stream);
  const auto garbage = frames.next();
  ASSERT_TRUE(garbage.has_value());
  EXPECT_EQ(garbage->status, BinaryFrameBuffer::Status::kGarbage);
  const auto recovered = frames.next();
  ASSERT_TRUE(recovered.has_value());
  ASSERT_EQ(recovered->status, BinaryFrameBuffer::Status::kOk);
  const BinaryStringTable table;
  const auto parsed = parse_binary_request(recovered->payload, table);
  const Request* round = std::get_if<Request>(&parsed);
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->vm_id, 21u);
  EXPECT_FALSE(frames.next().has_value());
}

TEST(BinaryProtocol, TruncatedFrameWaitsForTheRest) {
  std::string frame_bytes;
  encode_binary_request_into(place_request(5, 0), frame_bytes);
  BinaryFrameBuffer frames;
  // Byte-by-byte: no spurious frame or damage report mid-way.
  for (std::size_t i = 0; i + 1 < frame_bytes.size(); ++i) {
    frames.feed(std::string_view(&frame_bytes[i], 1));
    EXPECT_FALSE(frames.next().has_value()) << "after byte " << i;
  }
  frames.feed(std::string_view(&frame_bytes[frame_bytes.size() - 1], 1));
  const auto frame = frames.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->status, BinaryFrameBuffer::Status::kOk);
}

TEST(BinaryProtocol, OversizedLengthIsReportedPerHeaderAndNeverTrusted) {
  // Hostile headers claiming a 1 GiB payload: the buffer must not wait for
  // (or allocate) a gigabyte, and every oversized header must get its own
  // report — each one consumed a pipelined request slot — before resyncing
  // on the next plausible header.
  const auto hostile_header = [](std::string& out) {
    out.push_back(static_cast<char>(kBinaryMagic));
    out.push_back(1);  // kRequest
    out.push_back(0);
    out.push_back(0);
    const std::uint32_t huge = 1u << 30;
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
    for (int i = 0; i < 4; ++i) out.push_back(0);  // crc, irrelevant
  };
  std::string stream;
  hostile_header(stream);
  hostile_header(stream);
  encode_binary_request_into(place_request(6, 0), stream);

  BinaryFrameBuffer frames;
  frames.feed(stream);
  for (int report = 0; report < 2; ++report) {
    const auto oversized = frames.next();
    ASSERT_TRUE(oversized.has_value()) << "report " << report;
    EXPECT_EQ(oversized->status, BinaryFrameBuffer::Status::kOversized) << "report " << report;
  }
  const auto recovered = frames.next();
  ASSERT_TRUE(recovered.has_value());
  ASSERT_EQ(recovered->status, BinaryFrameBuffer::Status::kOk);
  const BinaryStringTable table;
  const auto parsed = parse_binary_request(recovered->payload, table);
  ASSERT_NE(std::get_if<Request>(&parsed), nullptr);
  EXPECT_FALSE(frames.next().has_value());
}

TEST(BinaryProtocol, EveryBadCrcFrameIsReportedAndTheNextFrameDecodes) {
  // Two corrupted pipelined frames must yield two reports: the frame
  // boundary is exact, and a once-per-run collapse would permanently shift
  // the request/response FIFO on a live connection.
  std::string damaged;
  encode_binary_request_into(place_request(7, 0), damaged);
  damaged[damaged.size() - 1] ^= 0x40;  // flip a payload bit in frame 1
  encode_binary_request_into(place_request(8, 0), damaged);
  damaged[damaged.size() - 1] ^= 0x40;  // ... and in frame 2
  encode_binary_request_into(place_request(9, 0), damaged);

  BinaryFrameBuffer frames;
  frames.feed(damaged);
  for (int report = 0; report < 2; ++report) {
    const auto bad = frames.next();
    ASSERT_TRUE(bad.has_value()) << "report " << report;
    EXPECT_EQ(bad->status, BinaryFrameBuffer::Status::kBadCrc) << "report " << report;
  }
  const auto good = frames.next();
  ASSERT_TRUE(good.has_value());
  ASSERT_EQ(good->status, BinaryFrameBuffer::Status::kOk);
  const BinaryStringTable table;
  const auto parsed = parse_binary_request(good->payload, table);
  const Request* round = std::get_if<Request>(&parsed);
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->vm_id, 9u);
  EXPECT_FALSE(frames.next().has_value());
}

TEST(BinaryProtocol, EncoderRefusesStringsBeyondWireLimitsInsteadOfTruncating) {
  // A string beyond its length prefix must fail the encode outright: a
  // truncated prefix would leave the tail bytes reinterpreted as later
  // fields — silent corruption instead of an error.
  const std::string huge(0x10000, 'g');

  Request big_group;
  big_group.op = RequestOp::kGroupReserve;
  big_group.vm_id = 1;
  big_group.group = huge;
  std::string out = "prefix";
  EXPECT_FALSE(encode_binary_request_into(big_group, out));
  EXPECT_EQ(out, "prefix");  // nothing half-written

  Request big_type;
  big_type.op = RequestOp::kPlace;
  big_type.vm_id = 2;
  big_type.vm_type_name = huge;
  EXPECT_FALSE(encode_binary_request_into(big_type, out));

  Request big_action;
  big_action.op = RequestOp::kRebalance;
  big_action.action = std::string(0x100, 'a');
  EXPECT_FALSE(encode_binary_request_into(big_action, out));
  EXPECT_EQ(out, "prefix");

  EXPECT_FALSE(append_intern_frame(1, huge, out));
  EXPECT_EQ(out, "prefix");

  // The in-range shapes still encode.
  Request fits;
  fits.op = RequestOp::kGroupReserve;
  fits.vm_id = 3;
  fits.group = std::string(0xFFFF, 'g');
  out.clear();
  EXPECT_TRUE(encode_binary_request_into(fits, out));
  EXPECT_TRUE(append_intern_frame(2, std::string(0xFFFF, 'n'), out));
}

TEST(BinaryProtocol, UnrepresentableResponseSubstitutesStructuredError) {
  // A response that cannot be expressed on the wire must degrade to a
  // decodable per-slot error — never a truncated count that desyncs the
  // stream, never an oversized frame that condemns a cell channel.
  Response too_many;
  too_many.ok = true;
  too_many.op = "stats";
  too_many.vm = 3;
  for (std::size_t i = 0; i < 0x10000; ++i) too_many.extra.emplace_back("k", "1");

  std::string encoded;
  encode_binary_response_into(too_many, encoded);
  std::string storage;
  const auto frame = one_frame(encoded, storage);
  ASSERT_EQ(frame.status, BinaryFrameBuffer::Status::kOk);
  std::string error;
  const auto round = parse_binary_response(frame.payload, &error);
  ASSERT_TRUE(round.has_value()) << error;
  EXPECT_FALSE(round->ok);
  EXPECT_EQ(round->error, "oversized_response");
  EXPECT_EQ(round->op, "stats");
  EXPECT_EQ(round->vm, 3u);
  EXPECT_TRUE(round->extra.empty());
}

TEST(BinaryProtocol, BigButValidResponseSurvivesTheResponseFrameCap) {
  // Responses are not bounded by the 64 KB request cap: a stats/metrics
  // payload beyond kMaxFrameBytes must encode intact and decode through a
  // response-sized frame buffer — the cell channel condemns the connection
  // on kOversized, so this is the difference between a big answer and a
  // dead channel.
  Response big;
  big.ok = true;
  big.op = "metrics";
  big.extra.emplace_back("text", "\"" + std::string(2 * kMaxFrameBytes, 'm') + "\"");

  std::string encoded;
  encode_binary_response_into(big, encoded);
  BinaryFrameBuffer frames(kMaxBinaryResponseBytes);
  frames.feed(encoded);
  const auto frame = frames.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->status, BinaryFrameBuffer::Status::kOk);
  std::string error;
  const auto round = parse_binary_response(frame->payload, &error);
  ASSERT_TRUE(round.has_value()) << error;
  EXPECT_EQ(round->extra, big.extra);
}

TEST(BinaryProtocol, FuzzMutatedStreamsNeverCrashAndReportsAreFinite) {
  // Mirror of the JSON fuzz suite: take a healthy stream, smash random bytes
  // and random truncations into it, and require the decoder to (a) never
  // crash or hang, (b) produce only well-formed verdicts, (c) keep every
  // payload it does emit decodable or cleanly rejected.
  std::string healthy;
  for (const Request& request : wire_requests()) {
    encode_binary_request_into(request, healthy);
  }
  Rng rng(0xf22du);
  const BinaryStringTable table;
  for (int round = 0; round < 200; ++round) {
    std::string stream = healthy;
    const int mutations = 1 + static_cast<int>(rng.uniform_index(8));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.uniform_index(stream.size());
      stream[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    if (rng.chance(0.3)) stream.resize(rng.uniform_index(stream.size()));

    BinaryFrameBuffer frames;
    std::size_t fed = 0;
    std::size_t verdicts = 0;
    while (true) {
      while (const auto frame = frames.next()) {
        ++verdicts;
        ASSERT_LT(verdicts, 10000u) << "decoder is not making progress";
        if (frame->status != BinaryFrameBuffer::Status::kOk) continue;
        if (frame->kind == BinaryFrameKind::kRequest) {
          (void)parse_binary_request(frame->payload, table);
        } else if (frame->kind == BinaryFrameKind::kIntern) {
          (void)parse_intern(frame->payload);
        } else {
          std::string error;
          (void)parse_binary_response(frame->payload, &error);
        }
      }
      if (fed >= stream.size()) break;
      const std::size_t chunk =
          std::min<std::size_t>(stream.size() - fed, 1 + rng.uniform_index(63));
      frames.feed(std::string_view(stream).substr(fed, chunk));
      fed += chunk;
    }
  }
}

}  // namespace
}  // namespace prvm
