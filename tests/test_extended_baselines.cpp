#include <gtest/gtest.h>

#include "placement/algorithm_factory.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

TEST(RoundRobin, CyclesThroughPms) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(3, 0));
  RoundRobin rr;
  EXPECT_EQ(rr.place(dc, Vm{0, 0}), std::optional<PmIndex>{0});
  EXPECT_EQ(rr.place(dc, Vm{1, 0}), std::optional<PmIndex>{1});
  EXPECT_EQ(rr.place(dc, Vm{2, 0}), std::optional<PmIndex>{2});
  EXPECT_EQ(rr.place(dc, Vm{3, 0}), std::optional<PmIndex>{0});  // wraps
}

TEST(RoundRobin, SkipsFullPms) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(2, 0));
  RoundRobin rr;
  // Fill PM 0 completely with 4-core jobs out of band.
  FirstFit ff;
  for (VmId id = 100; id < 104; ++id) {
    ASSERT_EQ(ff.place(dc, Vm{id, 1}), std::optional<PmIndex>{0});
  }
  EXPECT_EQ(rr.place(dc, Vm{0, 1}), std::optional<PmIndex>{1});
  EXPECT_EQ(rr.place(dc, Vm{1, 1}), std::optional<PmIndex>{1});
}

TEST(RoundRobin, RespectsConstraints) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(3, 0));
  RoundRobin rr;
  PlacementConstraints constraints;
  constraints.exclude = 0;
  EXPECT_EQ(rr.place(dc, Vm{0, 0}, constraints), std::optional<PmIndex>{1});
}

TEST(RoundRobin, ReturnsNulloptWhenEverythingFull) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  RoundRobin rr;
  for (VmId id = 0; id < 4; ++id) ASSERT_TRUE(rr.place(dc, Vm{id, 1}).has_value());
  EXPECT_FALSE(rr.place(dc, Vm{9, 0}).has_value());
}

TEST(BestFit, PrefersTightestUsedPm) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(3, 0));
  FirstFit ff;
  // PM 0 lightly used, PM 1 heavily used (12 of 16 slots).
  ASSERT_EQ(ff.place(dc, Vm{0, 0}), std::optional<PmIndex>{0});
  Datacenter::PlacedVm dummy;
  for (VmId id = 10; id < 13; ++id) {
    auto placement = dc.placements(1, 1);
    ASSERT_FALSE(placement.empty());
    dc.place(1, Vm{id, 1}, placement.front());
  }
  BestFit bf;
  // A 2-core job fits both; BestFit must choose the fuller PM 1.
  EXPECT_EQ(bf.place(dc, Vm{1, 0}), std::optional<PmIndex>{1});
}

TEST(BestFit, RemainingAfterIsNormalized) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  const ProfileShape& shape = dc.shape_of(0);
  EXPECT_DOUBLE_EQ(BestFit::remaining_after(dc, 0, Profile::zero(shape)), 1.0);
  EXPECT_DOUBLE_EQ(BestFit::remaining_after(dc, 0, best_profile(shape)), 0.0);
}

TEST(BestFit, OpensUnusedOnlyWhenNeeded) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(2, 0));
  BestFit bf;
  ASSERT_EQ(bf.place(dc, Vm{0, 0}), std::optional<PmIndex>{0});
  EXPECT_EQ(bf.place(dc, Vm{1, 0}), std::optional<PmIndex>{0});
  EXPECT_EQ(dc.used_count(), 1u);
}

TEST(ExtendedFactory, BuildsAllSixKinds) {
  EXPECT_EQ(extended_algorithm_kinds().size(), 6u);
  for (AlgorithmKind kind : extended_algorithm_kinds()) {
    if (kind == AlgorithmKind::kPageRankVm) continue;  // needs tables
    auto algorithm = make_algorithm(kind);
    EXPECT_EQ(algorithm->kind(), kind);
  }
  EXPECT_STREQ(to_string(AlgorithmKind::kRoundRobin), "RoundRobin");
  EXPECT_STREQ(to_string(AlgorithmKind::kBestFit), "BestFit");
}

TEST(ExtendedBaselines, ConsolidationOrderingOnSpreadVsPack) {
  // Round-robin must use (weakly) more PMs than BestFit on the same batch.
  const Catalog catalog = geni_catalog();
  Rng rng(21);
  const auto vms = random_vm_requests(rng, catalog, 40);
  std::size_t rr_pms = 0;
  std::size_t bf_pms = 0;
  {
    Datacenter dc(catalog, std::vector<std::size_t>(40, 0));
    RoundRobin rr;
    rr.place_all(dc, vms);
    rr_pms = dc.used_count();
  }
  {
    Datacenter dc(catalog, std::vector<std::size_t>(40, 0));
    BestFit bf;
    bf.place_all(dc, vms);
    bf_pms = dc.used_count();
  }
  EXPECT_GE(rr_pms, bf_pms);
  EXPECT_GT(rr_pms, 30u);  // spread touches nearly the whole fleet
}

}  // namespace
}  // namespace prvm
