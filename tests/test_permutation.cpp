#include "profile/permutation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace prvm {
namespace {

// Reference enumerator: every injection of items into dims, no pruning,
// deduplicated only by the resulting canonical usage vector.
void brute_force_rec(std::span<const int> items, int capacity, std::vector<int>& usage,
                     std::vector<bool>& used, std::size_t t,
                     std::set<std::vector<int>>& out) {
  if (t == items.size()) {
    std::vector<int> canon = usage;
    std::sort(canon.begin(), canon.end(), std::greater<int>());
    out.insert(canon);
    return;
  }
  for (std::size_t d = 0; d < usage.size(); ++d) {
    if (used[d] || usage[d] + items[t] > capacity) continue;
    used[d] = true;
    usage[d] += items[t];
    brute_force_rec(items, capacity, usage, used, t + 1, out);
    usage[d] -= items[t];
    used[d] = false;
  }
}

std::set<std::vector<int>> brute_force(std::vector<int> usage, int capacity,
                                       std::vector<int> items) {
  std::set<std::vector<int>> out;
  std::vector<bool> used(usage.size(), false);
  std::sort(items.begin(), items.end(), std::greater<int>());
  brute_force_rec(items, capacity, usage, used, 0, out);
  return out;
}

std::set<std::vector<int>> outcomes_of(const std::vector<GroupPlacement>& placements) {
  std::set<std::vector<int>> out;
  for (const GroupPlacement& p : placements) {
    std::vector<int> canon = p.result_usage;
    std::sort(canon.begin(), canon.end(), std::greater<int>());
    out.insert(canon);
  }
  return out;
}

TEST(GroupPlacements, PaperExamplePermutations) {
  // Empty [0,0,0,0] capacity 4, VM [1,1]: exactly one canonical outcome
  // ([1,1,0,0]) even though there are C(4,2)=6 raw permutations.
  const std::vector<int> usage{0, 0, 0, 0};
  const std::vector<int> items{1, 1};
  const auto placements = enumerate_group_placements(usage, 4, items);
  ASSERT_EQ(placements.size(), 1u);
  std::vector<int> canon = placements[0].result_usage;
  std::sort(canon.begin(), canon.end(), std::greater<int>());
  EXPECT_EQ(canon, (std::vector<int>{1, 1, 0, 0}));
}

TEST(GroupPlacements, DistinctOutcomesOnUnevenUsage) {
  // Usage [2,1,0,0], cap 4, item {1}: outcomes [3,1,0,0], [2,2,0,0],
  // [2,1,1,0] — three distinct canonical results.
  const auto placements = enumerate_group_placements(std::vector<int>{2, 1, 0, 0}, 4,
                                                     std::vector<int>{1});
  EXPECT_EQ(placements.size(), 3u);
}

TEST(GroupPlacements, EmptyItemsYieldIdentity) {
  const auto placements =
      enumerate_group_placements(std::vector<int>{1, 2}, 4, std::vector<int>{});
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_TRUE(placements[0].assignments.empty());
  EXPECT_EQ(placements[0].result_usage, (std::vector<int>{1, 2}));
}

TEST(GroupPlacements, MoreItemsThanDimsIsInfeasible) {
  EXPECT_TRUE(enumerate_group_placements(std::vector<int>{0, 0}, 4,
                                         std::vector<int>{1, 1, 1})
                  .empty());
}

TEST(GroupPlacements, CapacityBlocks) {
  EXPECT_TRUE(
      enumerate_group_placements(std::vector<int>{4, 4}, 4, std::vector<int>{1}).empty());
  EXPECT_EQ(
      enumerate_group_placements(std::vector<int>{4, 3}, 4, std::vector<int>{1}).size(),
      1u);
}

TEST(GroupPlacements, ItemsMustBeSortedDescending) {
  EXPECT_THROW(
      enumerate_group_placements(std::vector<int>{0, 0}, 4, std::vector<int>{1, 2}),
      std::invalid_argument);
}

TEST(GroupPlacements, AssignmentsAreConsistentWithResult) {
  const std::vector<int> usage{3, 1, 0, 2};
  const auto placements =
      enumerate_group_placements(usage, 4, std::vector<int>{2, 1});
  ASSERT_FALSE(placements.empty());
  for (const GroupPlacement& p : placements) {
    std::vector<int> replay = usage;
    std::set<int> dims;
    for (auto [dim, amount] : p.assignments) {
      EXPECT_TRUE(dims.insert(dim).second) << "anti-collocation violated";
      replay[static_cast<std::size_t>(dim)] += amount;
      EXPECT_LE(replay[static_cast<std::size_t>(dim)], 4);
    }
    EXPECT_EQ(replay, p.result_usage);
  }
}

TEST(GroupPlacements, MatchesBruteForceOnRandomInstances) {
  Rng rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    const int dims = rng.uniform_int(1, 6);
    const int capacity = rng.uniform_int(1, 5);
    std::vector<int> usage;
    for (int d = 0; d < dims; ++d) usage.push_back(rng.uniform_int(0, capacity));
    const int n_items = rng.uniform_int(1, std::min(dims, 4));
    std::vector<int> items;
    for (int i = 0; i < n_items; ++i) items.push_back(rng.uniform_int(1, capacity));
    std::sort(items.begin(), items.end(), std::greater<int>());

    const auto fast = outcomes_of(enumerate_group_placements(usage, capacity, items));
    const auto slow = brute_force(usage, capacity, items);
    EXPECT_EQ(fast, slow) << "dims=" << dims << " cap=" << capacity;
  }
}

TEST(QuantizedDemandValidation, CatchesMalformedDemands) {
  const ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
  QuantizedDemand wrong_groups{{{1}, {1}}};
  EXPECT_THROW(wrong_groups.validate(shape), std::invalid_argument);
  QuantizedDemand too_many_items{{{1, 1, 1, 1, 1}}};
  EXPECT_THROW(too_many_items.validate(shape), std::invalid_argument);
  QuantizedDemand unsorted{{{1, 2}}};
  EXPECT_THROW(unsorted.validate(shape), std::invalid_argument);
  QuantizedDemand zero_item{{{0}}};
  EXPECT_THROW(zero_item.validate(shape), std::invalid_argument);
  QuantizedDemand oversized{{{5}}};
  EXPECT_THROW(oversized.validate(shape), std::invalid_argument);
  QuantizedDemand ok{{{2, 1}}};
  EXPECT_NO_THROW(ok.validate(shape));
  EXPECT_EQ(ok.total(), 3);
  EXPECT_EQ(ok.describe(), "{2,1}");
}

TEST(EnumeratePlacements, CombinesGroupsCartesian) {
  const ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 2, 4},
                            DimensionGroup{ResourceKind::kDisk, 2, 4}});
  // CPU usage [1,0] with item {1}: 2 outcomes; disk usage [0,0] with {1}: 1
  // outcome -> 2 combined placements.
  const Profile current = Profile::from_levels(shape, {1, 0, 0, 0});
  const QuantizedDemand demand{{{1}, {1}}};
  const auto placements = enumerate_placements(shape, current, demand);
  EXPECT_EQ(placements.size(), 2u);
  for (const auto& p : placements) {
    EXPECT_EQ(p.result.total_usage(), current.total_usage() + demand.total());
  }
}

TEST(EnumeratePlacements, WorksOnNonCanonicalCurrent) {
  const ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 3, 4}});
  const Profile current = Profile::from_levels(shape, {0, 3, 1});  // not canonical
  const QuantizedDemand demand{{{2}}};
  const auto placements = enumerate_placements(shape, current, demand);
  // Outcomes: add 2 to dim of usage 0, 1 (3+2 > 4 blocked) -> canonical
  // {3,2,1} and {3,3,0}... adding to usage1: [0,3,3] -> {3,3,0}; usage0:
  // [2,3,1] -> {3,2,1}.
  EXPECT_EQ(placements.size(), 2u);
}

TEST(EnumerateSuccessorKeys, DeduplicatesAcrossPermutations) {
  const ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
  const Profile current = Profile::zero(shape);
  const QuantizedDemand demand{{{1, 1, 1, 1}}};
  const auto keys = enumerate_successor_keys(shape, current, demand);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(Profile::unpack(shape, keys[0]).describe(), "[1,1,1,1]");
}

TEST(DemandFits, AgreesWithEnumerationOnRandomInstances) {
  Rng rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    const int dims = rng.uniform_int(1, 5);
    const int capacity = rng.uniform_int(1, 5);
    const ProfileShape shape({DimensionGroup{ResourceKind::kCpu, dims, capacity}});
    std::vector<int> usage;
    for (int d = 0; d < dims; ++d) usage.push_back(rng.uniform_int(0, capacity));
    // Canonicalize so from_levels order matches demand_fits expectations.
    const Profile current = Profile::from_levels(shape, usage);
    const int n_items = rng.uniform_int(1, dims);
    std::vector<int> items;
    for (int i = 0; i < n_items; ++i) items.push_back(rng.uniform_int(1, capacity));
    std::sort(items.begin(), items.end(), std::greater<int>());
    const QuantizedDemand demand{{items}};

    const bool fits = demand_fits(shape, current, demand);
    const bool enumerable = !enumerate_placements(shape, current, demand).empty();
    EXPECT_EQ(fits, enumerable) << "trial " << trial;
  }
}

}  // namespace
}  // namespace prvm
