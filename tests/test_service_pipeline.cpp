// Parallel placement pipeline (DESIGN.md §6): the speculative intra-batch
// compute path and the WAL group-commit path must be *indistinguishable*
// from the serial worker — byte-identical WAL, bit-identical ledger,
// identical responses — and must preserve the ack-after-flush durability
// contract under injected storage faults and hard stops.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cluster/catalog.hpp"
#include "common/rng.hpp"
#include "core/catalog_graphs.hpp"
#include "service/io_env.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

std::shared_ptr<const ScoreTableSet> tables_for(const Catalog& catalog) {
  // Default on-disk cache — shared across the per-test processes.
  return std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("prvm-test-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is), {});
}

Request place_request(std::uint64_t vm, std::size_t type, std::string group = "") {
  Request request;
  request.op = RequestOp::kPlace;
  request.vm_id = vm;
  request.vm_type_index = type;
  request.group = std::move(group);
  return request;
}

class ServicePipelineTest : public ::testing::Test {
 protected:
  ServicePipelineTest() : catalog_(ec2_catalog()), tables_(tables_for(catalog_)) {}

  std::unique_ptr<PlacementService> make_service(ServiceConfig config) {
    return std::make_unique<PlacementService>(catalog_, mixed_pm_fleet(catalog_, 12), tables_,
                                              std::move(config));
  }

  /// A seeded churn trace (places with groups, releases, migrates). The
  /// feedback loop (which VMs are live) runs against a throwaway in-memory
  /// service, so the recorded request stream is a pure function of the seed
  /// and can be replayed verbatim against any number of services.
  std::vector<Request> make_trace(std::uint64_t seed, int ops) {
    auto shadow = make_service(ServiceConfig{});
    Rng rng(seed);
    std::vector<Request> trace;
    std::vector<VmId> live;
    VmId next_vm = 1;
    for (int op = 0; op < ops; ++op) {
      const int dice = rng.uniform_int(0, 99);
      Request request;
      if (dice < 60 || live.empty()) {
        request.op = RequestOp::kPlace;
        request.vm_id = next_vm++;
        request.vm_type_index = rng.uniform_index(catalog_.vm_types().size());
        if (rng.chance(0.25)) request.group = "g" + std::to_string(rng.uniform_int(0, 2));
      } else if (dice < 85) {
        const std::size_t pick = rng.uniform_index(live.size());
        request.op = RequestOp::kRelease;
        request.vm_id = live[pick];
      } else {
        request.op = RequestOp::kMigrate;
        request.vm_id = live[rng.uniform_index(live.size())];
      }
      if (shadow->execute(request).ok && request.op == RequestOp::kPlace) {
        live.push_back(request.vm_id);
      } else if (request.op == RequestOp::kRelease) {
        live.erase(std::find(live.begin(), live.end(), request.vm_id));
      }
      trace.push_back(std::move(request));
    }
    return trace;
  }

  /// Pre-enqueues the whole trace, then starts the worker, so batches run at
  /// full batch_size (the speculative path needs >1 place per batch to
  /// engage at all), then hard-stops — leaving the WAL bytes on disk.
  std::vector<Response> run_trace(PlacementService& service, const std::vector<Request>& trace) {
    std::vector<std::future<Response>> futures;
    futures.reserve(trace.size());
    for (const Request& request : trace) futures.push_back(service.submit(request));
    service.start();
    std::vector<Response> responses;
    responses.reserve(trace.size());
    for (auto& future : futures) responses.push_back(future.get());
    service.stop_now();
    return responses;
  }

  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
};

TEST_F(ServicePipelineTest, ConfigRejectsFlushGroupSmallerThanBatch) {
  ServiceConfig config;
  config.batch_size = 64;
  config.flush_group_max = 8;
  try {
    make_service(std::move(config));
    FAIL() << "flush_group_max < batch_size must be rejected";
  } catch (const ServiceConfigError& error) {
    EXPECT_EQ(error.field(), "flush_group_max");
    EXPECT_NE(std::string(error.what()).find("batch_size"), std::string::npos);
  }
  // Equal-to-batch and disabled (0) are both legal.
  ServiceConfig ok;
  ok.batch_size = 64;
  ok.flush_group_max = 64;
  EXPECT_NO_THROW(make_service(std::move(ok)));
}

TEST_F(ServicePipelineTest, ParallelPipelineIsByteIdenticalToSerialWorker) {
  for (const std::uint64_t seed : {0x5eedu, 0xacdcu, 0xf00du}) {
    const std::vector<Request> trace = make_trace(seed, 500);
    TempDir serial_dir("pipe-serial-" + std::to_string(seed));
    TempDir parallel_dir("pipe-parallel-" + std::to_string(seed));

    ServiceConfig serial;
    serial.data_dir = serial_dir.path();
    auto serial_service = make_service(std::move(serial));
    const std::vector<Response> serial_responses = run_trace(*serial_service, trace);

    ServiceConfig parallel;
    parallel.data_dir = parallel_dir.path();
    parallel.parallel_workers = 4;
    parallel.flush_group_max = 256;
    auto parallel_service = make_service(std::move(parallel));
    const std::vector<Response> parallel_responses = run_trace(*parallel_service, trace);

    // The pipeline must actually have engaged — otherwise this test proves
    // nothing — and must have committed at least some speculations.
    const obs::Registry& reg = parallel_service->metrics_registry();
    ASSERT_GT(reg.find_counter("prvm_spec_attempts_total")->value(), 0u);
    EXPECT_GT(reg.find_counter("prvm_spec_commits_total")->value(), 0u);
    EXPECT_GT(reg.find_counter("prvm_flush_groups_total")->value(), 0u);

    // Identical responses, op for op.
    ASSERT_EQ(serial_responses.size(), parallel_responses.size());
    for (std::size_t i = 0; i < serial_responses.size(); ++i) {
      const Response& a = serial_responses[i];
      const Response& b = parallel_responses[i];
      EXPECT_EQ(a.ok, b.ok) << "op " << i;
      EXPECT_EQ(a.op, b.op) << "op " << i;
      EXPECT_EQ(a.vm, b.vm) << "op " << i;
      EXPECT_EQ(a.pm, b.pm) << "op " << i;
      EXPECT_EQ(a.error, b.error) << "op " << i;
      EXPECT_EQ(a.message, b.message) << "op " << i;
    }

    // Identical final ledger, admission state — and byte-identical WAL.
    EXPECT_TRUE(datacenter_state_equal(serial_service->datacenter(),
                                       parallel_service->datacenter()));
    EXPECT_TRUE(serial_service->admission().state_equal(parallel_service->admission()));
    EXPECT_EQ(datacenter_state_digest(serial_service->datacenter()),
              datacenter_state_digest(parallel_service->datacenter()));
    const std::string serial_wal = read_file(serial_dir.path() / "wal.log");
    const std::string parallel_wal = read_file(parallel_dir.path() / "wal.log");
    ASSERT_FALSE(serial_wal.empty());
    EXPECT_EQ(serial_wal, parallel_wal) << "WAL bytes diverged at seed " << seed;

    // And both recover to the same state from their own disk.
    ServiceConfig recover_config;
    recover_config.data_dir = parallel_dir.path();
    auto recovered = make_service(std::move(recover_config));
    EXPECT_TRUE(recovered->stats().recovered);
    EXPECT_TRUE(
        datacenter_state_equal(serial_service->datacenter(), recovered->datacenter()));
  }
}

TEST_F(ServicePipelineTest, GroupFlushFailureDemotesThenRecoversDurably) {
  TempDir dir("pipe-fault");
  auto env = std::make_shared<FaultInjectingIoEnv>(
      FaultSchedule::parse("write:after=2:errno=ENOSPC:count=4"));
  ServiceConfig config;
  config.data_dir = dir.path();
  config.io_env = env;
  config.parallel_workers = 4;
  config.flush_group_max = 256;
  config.probe_initial_ms = 5;
  config.probe_max_ms = 20;
  auto service = make_service(std::move(config));
  service->start();

  // Acked means the group flush covered it; demoted means it did not. Both
  // verdicts must be truthful across the crash boundary below.
  std::vector<VmId> acked;
  std::size_t demoted = 0;
  for (VmId vm = 1; vm <= 60; ++vm) {
    const Response response = service->submit(place_request(vm, 0)).get();
    if (response.ok) {
      acked.push_back(vm);
    } else if (response.error == "degraded_storage") {
      ASSERT_TRUE(response.retry_after_ms.has_value());
      ++demoted;
    } else {
      ASSERT_EQ(response.error, "no_capacity") << response.message;
    }
    if (service->degraded()) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(demoted, 0u) << "the fault schedule must have bitten";

  // The worker observes the flusher's failure, degrades, probes, recovers.
  for (int waited = 0; service->degraded() && waited < 3000; waited += 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(service->degraded());
  const Response late = service->submit(place_request(1000, 0)).get();
  ASSERT_TRUE(late.ok) << late.error << ": " << late.message;

  service->stop_now();  // kill -9 stand-in
  ServiceConfig recover_config;
  recover_config.data_dir = dir.path();
  auto recovered = make_service(std::move(recover_config));
  EXPECT_TRUE(recovered->stats().recovered);
  for (const VmId vm : acked) {
    EXPECT_TRUE(recovered->datacenter().pm_of(vm).has_value())
        << "acked vm " << vm << " lost across crash recovery";
  }
  EXPECT_TRUE(recovered->datacenter().pm_of(1000).has_value());
}

TEST_F(ServicePipelineTest, DrainFlushesThePipelineBeforeTheFinalSnapshot) {
  TempDir dir("pipe-drain");
  std::vector<VmId> acked;
  {
    ServiceConfig config;
    config.data_dir = dir.path();
    config.parallel_workers = 2;
    config.flush_group_max = 128;
    auto service = make_service(std::move(config));
    std::vector<std::future<Response>> futures;
    for (VmId vm = 1; vm <= 100; ++vm) futures.push_back(service->submit(place_request(vm, 0)));
    service->start();
    for (VmId vm = 1; vm <= 100; ++vm) {
      if (futures[vm - 1].get().ok) acked.push_back(vm);
    }
    service->drain();
  }
  ASSERT_FALSE(acked.empty());
  ServiceConfig recover_config;
  recover_config.data_dir = dir.path();
  auto recovered = make_service(std::move(recover_config));
  EXPECT_TRUE(recovered->stats().recovered);
  for (const VmId vm : acked) {
    EXPECT_TRUE(recovered->datacenter().pm_of(vm).has_value());
  }
}

}  // namespace
}  // namespace prvm
