#include "exact/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include "core/catalog_graphs.hpp"
#include "placement/algorithm_factory.hpp"

namespace prvm {
namespace {

Catalog tiny_catalog() {
  // 2 cores x 2 levels + 4 memory levels: a PM holds at most two "pair" VMs
  // (cpu-bound) or four "mem1" VMs (memory-bound).
  std::vector<VmType> vms = {
      {"pair", 2, 1.0, 1.0, 0, 0.0},   // 1 level on each of 2 cores + 1 mem
      {"mem1", 1, 1.0, 1.0, 0, 0.0},   // 1 level on 1 core + 1 mem
  };
  std::vector<PmType> pms = {{"node", 2, 2.0, 4.0, 0, 0.0, "E5-2670"}};
  QuantizationConfig q;
  q.cpu_levels = 2;
  q.mem_levels = 4;
  return Catalog(std::move(vms), std::move(pms), q);
}

TEST(Exact, EmptyInstanceIsTriviallyOptimal) {
  ExactInstance instance{tiny_catalog(), {0, 0}, {}, {}};
  const auto result = solve_exact(instance);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
  EXPECT_EQ(result.pms_used, 0u);
}

TEST(Exact, SingleVmUsesOnePm) {
  ExactInstance instance{tiny_catalog(), {0, 0, 0}, {{1, 0}}, {}};
  const auto result = solve_exact(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.cost, 1.0);
  EXPECT_TRUE(verify_assignment(instance, result.assignment));
}

TEST(Exact, PacksTwoPairVmsOntoOnePm) {
  // Each "pair" VM uses 1 level on both cores; two of them saturate the CPU.
  ExactInstance instance{tiny_catalog(), {0, 0}, {{1, 0}, {2, 0}}, {}};
  const auto result = solve_exact(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.cost, 1.0);
  EXPECT_TRUE(verify_assignment(instance, result.assignment));
}

TEST(Exact, ThirdPairVmForcesSecondPm) {
  ExactInstance instance{tiny_catalog(), {0, 0}, {{1, 0}, {2, 0}, {3, 0}}, {}};
  const auto result = solve_exact(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.cost, 2.0);
}

TEST(Exact, InfeasibleWhenFleetTooSmall) {
  // 5 pair VMs need 3 PMs but only 2 exist.
  ExactInstance instance{
      tiny_catalog(), {0, 0}, {{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}}, {}};
  const auto result = solve_exact(instance);
  EXPECT_FALSE(result.feasible);
}

TEST(Exact, MixedTypesFindTightPacking) {
  // 1 pair (cpu 1+1, mem 1) + 2 mem1 (cpu 1, mem 1): cpu total per core
  // would be 2/2 levels, mem 3/4 -> all fit one PM.
  ExactInstance instance{tiny_catalog(), {0, 0, 0}, {{1, 0}, {2, 1}, {3, 1}}, {}};
  const auto result = solve_exact(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.cost, 1.0);
  EXPECT_TRUE(verify_assignment(instance, result.assignment));
}

TEST(Exact, RespectsHeterogeneousCosts) {
  // Two PMs; the second is much cheaper: optimum uses PM 1.
  ExactInstance instance{tiny_catalog(), {0, 0}, {{1, 1}}, {10.0, 1.0}};
  const auto result = solve_exact(instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.cost, 1.0);
  ASSERT_EQ(result.assignment.size(), 1u);
  EXPECT_EQ(result.assignment[0].pm, 1u);
}

TEST(Exact, CostVectorValidation) {
  ExactInstance instance{tiny_catalog(), {0, 0}, {{1, 0}}, {1.0}};
  EXPECT_THROW(solve_exact(instance), std::invalid_argument);
}

TEST(Exact, NodeBudgetMarksUnproven) {
  ExactInstance instance{tiny_catalog(),
                         {0, 0, 0, 0},
                         {{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 0}, {6, 1}},
                         {}};
  BranchAndBoundOptions options;
  options.max_nodes = 2;
  const auto result = solve_exact(instance, options);
  EXPECT_FALSE(result.proven_optimal);
}

TEST(Exact, HeuristicsNeverBeatTheOptimum) {
  const Catalog catalog = geni_catalog();
  auto tables =
      std::make_shared<const ScoreTableSet>(build_score_tables(catalog, {}, std::nullopt));
  Rng rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vm> vms;
    const std::size_t n = 2 + rng.uniform_index(5);
    for (std::size_t i = 0; i < n; ++i) {
      vms.push_back(Vm{static_cast<VmId>(i), rng.uniform_index(2)});
    }
    ExactInstance instance{catalog, {0, 0, 0, 0}, vms, {}};
    const auto exact = solve_exact(instance);
    ASSERT_TRUE(exact.feasible);
    ASSERT_TRUE(exact.proven_optimal);
    for (AlgorithmKind kind : all_algorithm_kinds()) {
      Datacenter dc(catalog, instance.pm_types_of);
      auto algorithm = make_algorithm(kind, tables);
      const auto rejected = algorithm->place_all(dc, vms);
      EXPECT_TRUE(rejected.empty());
      EXPECT_GE(dc.used_count(), exact.pms_used)
          << to_string(kind) << " beat the proven optimum, trial " << trial;
    }
  }
}

TEST(VerifyAssignment, RejectsBrokenAssignments) {
  const Catalog catalog = tiny_catalog();
  ExactInstance instance{catalog, {0, 0}, {{1, 0}}, {}};
  const ProfileShape& shape = catalog.shape(0);

  // Wrong size.
  EXPECT_FALSE(verify_assignment(instance, {}));

  // Anti-collocation violation: both vCPU levels on core 0.
  ExactAssignment collocated = {
      {0, DemandPlacement{{{0, 1}, {0, 1}, {2, 1}}, Profile::zero(shape)}}};
  EXPECT_FALSE(verify_assignment(instance, collocated));

  // Wrong amounts (does not match the catalog demand multiset).
  ExactAssignment wrong_amounts = {
      {0, DemandPlacement{{{0, 2}, {2, 1}}, Profile::zero(shape)}}};
  EXPECT_FALSE(verify_assignment(instance, wrong_amounts));

  // A correct assignment passes.
  ExactAssignment good = {
      {0, DemandPlacement{{{0, 1}, {1, 1}, {2, 1}}, Profile::zero(shape)}}};
  EXPECT_TRUE(verify_assignment(instance, good));
  EXPECT_DOUBLE_EQ(assignment_cost(instance, good), 1.0);
}

TEST(Exact, NodeCounterGrowsWithInstanceSize) {
  // The §IV complexity story: search nodes blow up as VMs are added.
  const Catalog catalog = tiny_catalog();
  std::uint64_t previous = 0;
  for (std::size_t n : {2u, 4u, 6u}) {
    std::vector<Vm> vms;
    for (std::size_t i = 0; i < n; ++i) {
      vms.push_back(Vm{static_cast<VmId>(i), i % 2});
    }
    ExactInstance instance{catalog, {0, 0, 0, 0}, vms, {}};
    const auto result = solve_exact(instance);
    ASSERT_TRUE(result.feasible);
    EXPECT_GT(result.nodes_explored, previous);
    previous = result.nodes_explored;
  }
}

}  // namespace
}  // namespace prvm
