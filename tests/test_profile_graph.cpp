#include "core/profile_graph.hpp"

#include <gtest/gtest.h>

#include <set>

namespace prvm {
namespace {

// The paper's running example: capacity [4,4,4,4], VM set {[1,1],[1,1,1,1]}.
ProfileGraph paper_graph() {
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1, 1}}},
                                          QuantizedDemand{{{1, 1, 1, 1}}}};
  return ProfileGraph(std::move(shape), std::move(demands));
}

TEST(ProfileGraph, PaperExampleNodeCount) {
  const ProfileGraph g = paper_graph();
  // Every canonical profile with even total usage that decomposes into
  // {[1,1],[1,1,1,1]} placements; established by inspection (and stable:
  // any change here signals a graph-construction change).
  EXPECT_EQ(g.node_count(), 33u);
  EXPECT_EQ(g.graph().edge_count(), 84u);
}

TEST(ProfileGraph, ZeroNodeIsFirst) {
  const ProfileGraph g = paper_graph();
  EXPECT_EQ(g.zero_node(), 0u);
  EXPECT_EQ(g.profile_of(0).total_usage(), 0);
  EXPECT_DOUBLE_EQ(g.utilization(0), 0.0);
}

TEST(ProfileGraph, BestProfileReachable) {
  const ProfileGraph g = paper_graph();
  const auto best = g.best_node();
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(g.profile_of(*best).is_best(g.shape()));
  EXPECT_DOUBLE_EQ(g.utilization(*best), 1.0);
}

TEST(ProfileGraph, IsADag) {
  const ProfileGraph g = paper_graph();
  EXPECT_NO_THROW(topological_order(g.graph()));
}

TEST(ProfileGraph, EdgesIncreaseUsageByDemandTotals) {
  const ProfileGraph g = paper_graph();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const int before = g.profile_of(u).total_usage();
    for (NodeId v : g.graph().successors(u)) {
      const int delta = g.profile_of(v).total_usage() - before;
      EXPECT_TRUE(delta == 2 || delta == 4) << "edge " << u << "->" << v;
    }
  }
}

TEST(ProfileGraph, EveryNonZeroNodeHasAPredecessor) {
  const ProfileGraph g = paper_graph();
  std::vector<bool> has_pred(g.node_count(), false);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.graph().successors(u)) has_pred[v] = true;
  }
  for (NodeId u = 1; u < g.node_count(); ++u) {
    EXPECT_TRUE(has_pred[u]) << g.profile_of(u).describe();
  }
}

TEST(ProfileGraph, SinksCannotAccommodateAnyVm) {
  const ProfileGraph g = paper_graph();
  const auto sinks = g.sink_nodes();
  EXPECT_FALSE(sinks.empty());
  for (NodeId s : sinks) {
    const Profile p = g.profile_of(s);
    for (const QuantizedDemand& d : g.demands()) {
      EXPECT_FALSE(demand_fits(g.shape(), p, d)) << p.describe();
    }
  }
  // The best profile is among the sinks.
  const auto best = g.best_node();
  ASSERT_TRUE(best.has_value());
  EXPECT_NE(std::find(sinks.begin(), sinks.end(), *best), sinks.end());
}

TEST(ProfileGraph, FindNodeOnlyFindsReachableProfiles) {
  const ProfileGraph g = paper_graph();
  const ProfileShape& shape = g.shape();
  // [4,3,3,3] has odd total usage 13: unreachable with even-sized VMs.
  const ProfileKey odd = Profile::from_levels(shape, {4, 3, 3, 3}).pack(shape);
  EXPECT_FALSE(g.find_node(odd).has_value());
  const ProfileKey even = Profile::from_levels(shape, {3, 3, 2, 2}).pack(shape);
  EXPECT_TRUE(g.find_node(even).has_value());
}

TEST(ProfileGraph, SuccessorsForDemandMatchEnumeration) {
  const ProfileGraph g = paper_graph();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    std::set<NodeId> unioned;
    for (std::size_t t = 0; t < g.demands().size(); ++t) {
      for (NodeId v : g.successors_for_demand(u, t)) unioned.insert(v);
    }
    const auto succ = g.graph().successors(u);
    EXPECT_EQ(unioned, std::set<NodeId>(succ.begin(), succ.end()));
  }
}

TEST(ProfileGraph, DistinctSuccessorProfilesNotEdgesPerPermutation) {
  // From zero, [1,1] has many permutations but exactly one distinct
  // successor profile; together with [1,1,1,1] the zero node has out 2.
  const ProfileGraph g = paper_graph();
  EXPECT_EQ(g.graph().out_degree(g.zero_node()), 2u);
}

TEST(ProfileGraph, MaxNodesGuard) {
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1}}}};
  ProfileGraphOptions options;
  options.max_nodes = 3;
  EXPECT_THROW(ProfileGraph(shape, demands, options), std::invalid_argument);
}

TEST(ProfileGraph, RejectsEmptyOrZeroDemands) {
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 2, 2}});
  EXPECT_THROW(ProfileGraph(shape, {}), std::invalid_argument);
  std::vector<QuantizedDemand> zero = {QuantizedDemand{{{}}}};
  EXPECT_THROW(ProfileGraph(shape, zero), std::invalid_argument);
}

TEST(ProfileGraph, MultiGroupShape) {
  // 2 cores cap 2 + memory cap 2; VM = 1 vCPU unit + 1 memory unit.
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 2, 2},
                      DimensionGroup{ResourceKind::kMemory, 1, 2}});
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1}, {1}}}};
  const ProfileGraph g(shape, demands);
  // Reachable profiles: cpu usage multisets with total == mem usage, mem<=2:
  // [0,0|0], [1,0|1], [1,1|2], [2,0|2] -> 4 nodes.
  EXPECT_EQ(g.node_count(), 4u);
  // Memory exhausts before CPU: sinks are the two usage-2 profiles.
  EXPECT_EQ(g.sink_nodes().size(), 2u);
  EXPECT_FALSE(g.best_node().has_value());  // [2,2|2] is not reachable
}

TEST(ProfileGraph, SingleVmTypeChain) {
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 1, 4}});
  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1}}}};
  const ProfileGraph g(shape, demands);
  EXPECT_EQ(g.node_count(), 5u);  // 0..4
  EXPECT_EQ(g.graph().edge_count(), 4u);
  EXPECT_TRUE(g.best_node().has_value());
}

}  // namespace
}  // namespace prvm
