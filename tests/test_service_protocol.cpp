// Hostile-input tests for the daemon's JSON-lines codec: malformed frames,
// oversized requests, partial reads and unknown commands must all decode to
// structured errors — never a crash, never a dropped byte of a later frame.
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "service/protocol.hpp"

namespace prvm {
namespace {

const ProtocolError* error_of(const std::variant<Request, ProtocolError>& result) {
  return std::get_if<ProtocolError>(&result);
}

const Request* request_of(const std::variant<Request, ProtocolError>& result) {
  return std::get_if<Request>(&result);
}

TEST(ServiceProtocol, ParsesPlaceWithTypeName) {
  const auto result = parse_request(R"({"op":"place","vm":7,"type":"m3.xlarge"})");
  const Request* request = request_of(result);
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->op, RequestOp::kPlace);
  EXPECT_EQ(request->vm_id, 7u);
  EXPECT_EQ(request->vm_type_name, "m3.xlarge");
  EXPECT_FALSE(request->vm_type_index.has_value());
  EXPECT_TRUE(request->group.empty());
}

TEST(ServiceProtocol, ParsesPlaceWithTypeIndexAndGroup) {
  const auto result = parse_request(R"({"op":"place","vm":8,"type":2,"group":"web"})");
  const Request* request = request_of(result);
  ASSERT_NE(request, nullptr);
  ASSERT_TRUE(request->vm_type_index.has_value());
  EXPECT_EQ(*request->vm_type_index, 2u);
  EXPECT_EQ(request->group, "web");
}

TEST(ServiceProtocol, ParsesReleaseMigrateStatsDrain) {
  EXPECT_EQ(request_of(parse_request(R"({"op":"release","vm":1})"))->op, RequestOp::kRelease);
  EXPECT_EQ(request_of(parse_request(R"({"op":"migrate","vm":1})"))->op, RequestOp::kMigrate);
  EXPECT_EQ(request_of(parse_request(R"({"op":"stats"})"))->op, RequestOp::kStats);
  EXPECT_EQ(request_of(parse_request(R"({"op":"drain"})"))->op, RequestOp::kDrain);
}

TEST(ServiceProtocol, ParsesLookupAndHealth) {
  const auto result = parse_request(R"({"op":"lookup","vm":9})");
  const Request* lookup = request_of(result);
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(lookup->op, RequestOp::kLookup);
  EXPECT_EQ(lookup->vm_id, 9u);
  EXPECT_EQ(request_of(parse_request(R"({"op":"health"})"))->op, RequestOp::kHealth);

  // lookup is per-VM: a missing id is a structured error, not a crash.
  const auto missing = parse_request(R"({"op":"lookup"})");
  ASSERT_NE(error_of(missing), nullptr);
  EXPECT_EQ(error_of(missing)->code, "missing_field");
}

TEST(ServiceProtocol, MalformedJsonIsStructuredError) {
  for (const char* line : {
           "",                         // empty frame
           "not json at all",          // free text
           "{",                        // truncated object
           R"({"op":"place",})",       // trailing comma
           R"({"op":"place" "vm":1})", // missing comma
           R"({"op":)",                // truncated value
           "\x00\x01\x02",             // binary garbage
           R"({"op":"stats"} trailing)", // trailing garbage after document
           R"([1,2,3])",               // not an object
       }) {
    const auto result = parse_request(line);
    const ProtocolError* error = error_of(result);
    ASSERT_NE(error, nullptr) << "input: " << line;
    EXPECT_EQ(error->code, "bad_json") << "input: " << line;
  }
}

TEST(ServiceProtocol, DeeplyNestedJsonIsRejectedNotStackOverflowed) {
  std::string bomb;
  for (int i = 0; i < 4000; ++i) bomb += '[';
  const auto result = parse_request(bomb);
  const ProtocolError* error = error_of(result);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, "bad_json");
}

TEST(ServiceProtocol, UnknownOpIsStructuredError) {
  const auto result = parse_request(R"({"op":"explode","vm":1})");
  const ProtocolError* error = error_of(result);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, "unknown_op");
}

TEST(ServiceProtocol, MissingAndTypeConfusedFieldsAreStructuredErrors) {
  EXPECT_EQ(error_of(parse_request(R"({"vm":1})"))->code, "missing_field");  // no op
  EXPECT_EQ(error_of(parse_request(R"({"op":"place","type":"m3.xlarge"})"))->code,
            "missing_field");  // no vm
  EXPECT_EQ(error_of(parse_request(R"({"op":"place","vm":1})"))->code,
            "missing_field");  // no type
  EXPECT_EQ(error_of(parse_request(R"({"op":"place","vm":"seven","type":1})"))->code,
            "bad_field");  // vm not a number
  EXPECT_EQ(error_of(parse_request(R"({"op":"place","vm":-3,"type":1})"))->code,
            "bad_field");  // negative vm
  EXPECT_EQ(error_of(parse_request(R"({"op":"place","vm":1.5,"type":1})"))->code,
            "bad_field");  // fractional vm
  EXPECT_EQ(error_of(parse_request(R"({"op":"place","vm":4294967296,"type":1})"))->code,
            "bad_field");  // vm over 32 bits
  EXPECT_EQ(error_of(parse_request(R"({"op":"place","vm":1,"type":true})"))->code,
            "bad_field");  // type neither name nor index
  EXPECT_EQ(error_of(parse_request(R"({"op":"place","vm":1,"type":1,"group":7})"))->code,
            "bad_field");  // group not a string
  EXPECT_EQ(error_of(parse_request(R"({"op":7})"))->code, "bad_field");  // op not a string
}

TEST(ServiceProtocol, EncodeResponseRoundTripsThroughParser) {
  Response response;
  response.ok = false;
  response.op = "place";
  response.vm = 9;
  response.error = "no_capacity";
  response.message = "weird \"quotes\" and \n control \x01 bytes";
  response.retry_after_ms = 5.0;
  response.extra.emplace_back("used_pms", "17");

  const std::string line = encode_response(response);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  std::string error;
  const auto doc = parse_json(std::string_view(line.data(), line.size() - 1), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("ok")->kind, JsonValue::Kind::kBool);
  EXPECT_FALSE(doc->find("ok")->boolean);
  EXPECT_EQ(doc->find("vm")->number, 9.0);
  EXPECT_EQ(doc->find("error")->string, "no_capacity");
  EXPECT_EQ(doc->find("message")->string, response.message);
  EXPECT_EQ(doc->find("used_pms")->number, 17.0);
}

TEST(ServiceProtocol, LineBufferReassemblesArbitraryChunks) {
  const std::string stream = "{\"op\":\"stats\"}\n{\"op\":\"drain\"}\n{\"op\":\"place\"}\n";
  // Feed byte-by-byte: worst-case partial reads.
  LineBuffer buffer;
  std::vector<std::string> lines;
  for (char c : stream) {
    buffer.feed(std::string_view(&c, 1));
    while (const auto frame = buffer.next()) {
      EXPECT_FALSE(frame->oversized);
      lines.push_back(frame->line);
    }
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"op\":\"stats\"}");
  EXPECT_EQ(lines[2], "{\"op\":\"place\"}");

  // And in one gulp.
  LineBuffer gulp;
  gulp.feed(stream);
  std::size_t count = 0;
  while (gulp.next()) ++count;
  EXPECT_EQ(count, 3u);
}

TEST(ServiceProtocol, OversizedFrameIsDiscardedAndStreamResyncs) {
  LineBuffer buffer(/*max_frame=*/64);
  const std::string huge(1000, 'x');
  buffer.feed(huge);
  // Mid-frame over the cap: reported once, even before the newline arrives.
  auto frame = buffer.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->oversized);
  EXPECT_FALSE(buffer.next().has_value());

  // More of the same oversized frame: silently swallowed.
  buffer.feed(huge);
  EXPECT_FALSE(buffer.next().has_value());

  // Frame ends, next frame is intact.
  buffer.feed("tail-of-garbage\n{\"op\":\"stats\"}\n");
  frame = buffer.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(frame->oversized);
  EXPECT_EQ(frame->line, "{\"op\":\"stats\"}");
  EXPECT_FALSE(buffer.next().has_value());
}

TEST(ServiceProtocol, UnicodeEscapesAndEscapedStringsParse) {
  std::string error;
  const auto doc = parse_json(R"({"s":"aA\t\"b\\"})", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("s")->string, "aA\t\"b\\");
  EXPECT_FALSE(parse_json(R"({"s":"\u12"})", &error).has_value());  // short escape
  EXPECT_FALSE(parse_json("{\"s\":\"unterminated", &error).has_value());
}

}  // namespace
}  // namespace prvm
