#include <gtest/gtest.h>

#include "core/catalog_graphs.hpp"
#include "network/network_aware.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

TEST(LeafSpineTopology, RackAssignmentAndHops) {
  LeafSpineTopology topo(10, TopologyConfig{4, 1.0, 10.0});
  EXPECT_EQ(topo.rack_count(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(topo.rack_of(0), 0u);
  EXPECT_EQ(topo.rack_of(3), 0u);
  EXPECT_EQ(topo.rack_of(4), 1u);
  EXPECT_EQ(topo.rack_of(9), 2u);
  EXPECT_EQ(topo.hop_distance(1, 1), 0);
  EXPECT_EQ(topo.hop_distance(0, 3), 2);
  EXPECT_EQ(topo.hop_distance(0, 4), 4);
  EXPECT_DOUBLE_EQ(topo.locality_weight(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(topo.locality_weight(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(topo.locality_weight(0, 9), 0.25);
}

TEST(LeafSpineTopology, Validation) {
  EXPECT_THROW(LeafSpineTopology(0), std::invalid_argument);
  EXPECT_THROW(LeafSpineTopology(4, TopologyConfig{0, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(LeafSpineTopology(4, TopologyConfig{2, 0.0, 1.0}), std::invalid_argument);
  LeafSpineTopology topo(4, TopologyConfig{2, 1.0, 1.0});
  EXPECT_THROW(topo.rack_of(4), std::invalid_argument);
}

TEST(TrafficModel, GroupsAndPeers) {
  TrafficModel model;
  model.add_group({{1, 2, 3}, 10.0});
  model.add_group({{7, 8}, 5.0});
  EXPECT_EQ(model.groups().size(), 2u);
  EXPECT_EQ(model.peers_of(2), (std::vector<VmId>{1, 3}));
  EXPECT_TRUE(model.peers_of(99).empty());
  EXPECT_DOUBLE_EQ(model.rate_of(7), 5.0);
  EXPECT_DOUBLE_EQ(model.rate_of(99), 0.0);
}

TEST(TrafficModel, Validation) {
  TrafficModel model;
  EXPECT_THROW(model.add_group({{1}, 1.0}), std::invalid_argument);
  EXPECT_THROW(model.add_group({{1, 2}, -1.0}), std::invalid_argument);
  model.add_group({{1, 2}, 1.0});
  EXPECT_THROW(model.add_group({{2, 3}, 1.0}), std::invalid_argument);  // 2 reused
}

TEST(TrafficModel, EvaluateBreaksDownByLocality) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(4, 0));
  LeafSpineTopology topo(4, TopologyConfig{2, 1.0, 10.0});  // racks {0,1}, {2,3}
  TrafficModel model;
  model.add_group({{0, 1, 2}, 10.0});

  dc.place_first_fit(0, Vm{0, 0});  // vm0 -> pm0
  dc.place_first_fit(0, Vm{1, 0});  // vm1 -> pm0 (same PM)
  dc.place_first_fit(2, Vm{2, 0});  // vm2 -> pm2 (other rack)

  const auto cost = model.evaluate(dc, topo);
  EXPECT_DOUBLE_EQ(cost.total_mbps, 30.0);        // 3 pairs x 10
  EXPECT_DOUBLE_EQ(cost.intra_pm_mbps, 10.0);     // (0,1)
  EXPECT_DOUBLE_EQ(cost.intra_rack_mbps, 0.0);
  EXPECT_DOUBLE_EQ(cost.inter_rack_mbps, 20.0);   // (0,2), (1,2)
  EXPECT_DOUBLE_EQ(cost.weighted_hop_mbps, 10.0 * 0 + 20.0 * 4);
  EXPECT_NEAR(cost.inter_rack_share(), 2.0 / 3.0, 1e-12);
}

TEST(TrafficModel, EvaluateSkipsUnplacedEndpoints) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(2, 0));
  LeafSpineTopology topo(2);
  TrafficModel model;
  model.add_group({{0, 1}, 10.0});
  dc.place_first_fit(0, Vm{0, 0});  // vm1 never placed
  const auto cost = model.evaluate(dc, topo);
  EXPECT_DOUBLE_EQ(cost.total_mbps, 0.0);
}

TEST(RandomTrafficGroups, PartitionsWithoutOverlap) {
  Rng rng(5);
  std::vector<Vm> vms;
  for (VmId id = 0; id < 50; ++id) vms.push_back(Vm{id, 0});
  const TrafficModel model = random_traffic_groups(rng, vms, 2, 5, 8.0);
  std::size_t covered = 0;
  for (const TrafficGroup& g : model.groups()) {
    EXPECT_GE(g.members.size(), 2u);
    EXPECT_LE(g.members.size(), 5u);
    EXPECT_DOUBLE_EQ(g.pairwise_mbps, 8.0);
    covered += g.members.size();
  }
  EXPECT_GE(covered, 48u);  // at most one trailing singleton left out
  EXPECT_THROW(random_traffic_groups(rng, vms, 1, 3, 1.0), std::invalid_argument);
}

class NetworkAwareTest : public ::testing::Test {
 protected:
  NetworkAwareTest()
      : catalog_(geni_catalog()),
        tables_(std::make_shared<const ScoreTableSet>(
            build_score_tables(catalog_, {}, std::nullopt))),
        topology_(std::make_shared<const LeafSpineTopology>(8, TopologyConfig{4, 1.0, 10.0})) {}

  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
  std::shared_ptr<const LeafSpineTopology> topology_;
};

TEST_F(NetworkAwareTest, ValidatesArguments) {
  auto traffic = std::make_shared<const TrafficModel>();
  EXPECT_THROW(NetworkAwarePageRankVm(tables_, nullptr, traffic), std::invalid_argument);
  EXPECT_THROW(NetworkAwarePageRankVm(tables_, topology_, nullptr), std::invalid_argument);
  NetworkAwareOptions bad;
  bad.locality_weight_factor = 1.5;
  EXPECT_THROW(NetworkAwarePageRankVm(tables_, topology_, traffic, bad),
               std::invalid_argument);
}

TEST_F(NetworkAwareTest, UngroupedVmsBehaveLikePlainPageRankVm) {
  auto traffic = std::make_shared<const TrafficModel>();
  Datacenter dc_a(catalog_, std::vector<std::size_t>(8, 0));
  Datacenter dc_b(catalog_, std::vector<std::size_t>(8, 0));
  NetworkAwarePageRankVm aware(tables_, topology_, traffic);
  PageRankVm plain(tables_);
  Rng rng(3);
  const auto vms = random_vm_requests(rng, catalog_, 20);
  for (const Vm& vm : vms) {
    EXPECT_EQ(aware.place(dc_a, vm), plain.place(dc_b, vm));
  }
}

TEST_F(NetworkAwareTest, HighLocalityWeightKeepsGroupsTogether) {
  auto traffic = std::make_shared<TrafficModel>();
  traffic->add_group({{0, 1, 2, 3}, 10.0});
  NetworkAwareOptions options;
  options.locality_weight_factor = 0.9;
  NetworkAwarePageRankVm aware(tables_, topology_,
                               std::shared_ptr<const TrafficModel>(traffic), options);
  Datacenter dc(catalog_, std::vector<std::size_t>(8, 0));
  // Pre-fill PM 0 (rack 0) a bit so scores differ across PMs, then place
  // the group: all members must end up in rack 0 with the first one.
  for (const Vm vm : {Vm{0, 1}, Vm{1, 1}, Vm{2, 1}, Vm{3, 1}}) {
    ASSERT_TRUE(aware.place(dc, vm).has_value());
  }
  const auto first = dc.pm_of(0);
  ASSERT_TRUE(first.has_value());
  for (VmId id : {1u, 2u, 3u}) {
    const auto pm = dc.pm_of(id);
    ASSERT_TRUE(pm.has_value());
    EXPECT_EQ(topology_->rack_of(*pm), topology_->rack_of(*first)) << "vm " << id;
  }
}

TEST_F(NetworkAwareTest, AffinityMatchesTopology) {
  auto traffic = std::make_shared<TrafficModel>();
  traffic->add_group({{0, 1}, 10.0});
  NetworkAwarePageRankVm aware(tables_, topology_,
                               std::shared_ptr<const TrafficModel>(traffic));
  Datacenter dc(catalog_, std::vector<std::size_t>(8, 0));
  EXPECT_FALSE(aware.affinity(dc, 0, 1).has_value());  // peer not placed yet
  dc.place_first_fit(2, Vm{0, 0});                     // vm0 on pm2 (rack 0)
  EXPECT_DOUBLE_EQ(aware.affinity(dc, 2, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(aware.affinity(dc, 0, 1).value(), 0.5);
  EXPECT_DOUBLE_EQ(aware.affinity(dc, 7, 1).value(), 0.25);
}

TEST_F(NetworkAwareTest, ReducesInterRackTrafficVersusPlain) {
  Rng rng(11);
  std::vector<Vm> vms;
  for (VmId id = 0; id < 48; ++id) vms.push_back(Vm{id, id % 2});
  Rng group_rng(12);
  auto traffic = std::make_shared<const TrafficModel>(
      random_traffic_groups(group_rng, vms, 3, 6, 10.0));
  auto topo = std::make_shared<const LeafSpineTopology>(24, TopologyConfig{4, 1.0, 10.0});

  TrafficModel::CostBreakdown plain_cost, aware_cost;
  {
    Datacenter dc(catalog_, std::vector<std::size_t>(24, 0));
    PageRankVm plain(tables_);
    plain.place_all(dc, vms);
    plain_cost = traffic->evaluate(dc, *topo);
  }
  {
    Datacenter dc(catalog_, std::vector<std::size_t>(24, 0));
    NetworkAwareOptions options;
    options.locality_weight_factor = 0.7;
    NetworkAwarePageRankVm aware(tables_, topo, traffic, options);
    aware.place_all(dc, vms);
    aware_cost = traffic->evaluate(dc, *topo);
  }
  EXPECT_LT(aware_cost.weighted_hop_mbps, plain_cost.weighted_hop_mbps);
}

}  // namespace
}  // namespace prvm
