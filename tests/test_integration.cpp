// End-to-end integration: the full pipeline (catalog -> score tables ->
// placement -> simulation -> reporting) on a reduced-scale version of the
// paper's EC2 experiment, plus cross-module consistency checks.
#include <gtest/gtest.h>

#include <filesystem>

#include "exact/branch_and_bound.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "testbed/testbed.hpp"

namespace prvm {
namespace {

TEST(Integration, Ec2PipelineAllAlgorithms) {
  Ec2ExperimentConfig config;
  config.vm_count = 120;
  config.repetitions = 2;
  config.seed = 2024;
  config.sim.epochs = 24;
  const Ec2Experiment experiment(config);

  std::vector<FigurePoint> pms_points;
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    const auto result = experiment.run(kind);
    ASSERT_EQ(result.runs.size(), 2u);
    for (const SimMetrics& m : result.runs) {
      EXPECT_EQ(m.rejected_vms, 0u);
      EXPECT_GT(m.pms_used_initial, 0u);
      EXPECT_GT(m.energy_kwh, 0.0);
    }
    pms_points.push_back(
        {static_cast<double>(config.vm_count), kind, result.pms_used()});
  }
  // Reporting machinery digests the real results.
  const TextTable table = figure_table("VMs", pms_points);
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_FALSE(ordering_verdict(pms_points).empty());
}

TEST(Integration, ScoreTableCachePersistsAcrossExperimentInstances) {
  const auto dir = std::filesystem::temp_directory_path() / "prvm-integration-cache";
  std::filesystem::remove_all(dir);
  const Catalog catalog = geni_catalog();
  build_score_tables(catalog, {}, dir);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_NE(entry.path().filename().string().find("scoretable-"), std::string::npos);
  }
  EXPECT_EQ(files, 1u);
  // Second build loads rather than rebuilds (same digest); file count stays.
  build_score_tables(catalog, {}, dir);
  files = 0;
  for ([[maybe_unused]] const auto& entry : std::filesystem::directory_iterator(dir)) ++files;
  EXPECT_EQ(files, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Integration, HeuristicsVsExactOnGeniScale) {
  // A full cross-check on a realistic (small) instance of the GENI setup.
  const Catalog catalog = geni_catalog();
  auto tables = std::make_shared<const ScoreTableSet>(
      build_score_tables(catalog, {}, std::nullopt));
  std::vector<Vm> jobs;
  for (VmId id = 0; id < 6; ++id) jobs.push_back(Vm{id, id % 2});
  ExactInstance instance{catalog, {0, 0, 0}, jobs, {}};
  const auto exact = solve_exact(instance);
  ASSERT_TRUE(exact.feasible);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_TRUE(verify_assignment(instance, exact.assignment));

  // PageRankVM matches the optimum on this instance (3x(2+4)=18 slots on
  // 16-slot instances -> 2 PMs).
  Datacenter dc(catalog, instance.pm_types_of);
  auto algorithm = make_algorithm(AlgorithmKind::kPageRankVm, tables);
  EXPECT_TRUE(algorithm->place_all(dc, jobs).empty());
  EXPECT_EQ(dc.used_count(), exact.pms_used);
}

TEST(Integration, SimAndTestbedShareMigrationPolicies) {
  // The same policy objects drive both the cloud simulator and the GENI
  // controller (SimView is the shared interface); run both end-to-end.
  GeniExperimentConfig config;
  config.instances = 8;
  config.jobs = 14;
  config.seed = 31;
  config.options.scans = 40;
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    const TestbedMetrics metrics = run_geni_experiment(kind, config);
    EXPECT_GT(metrics.pms_used, 0u) << to_string(kind);
    EXPECT_LE(metrics.pms_used, 8u) << to_string(kind);
  }
}

TEST(Integration, PaperMotivationStoryEndToEnd) {
  // §III: [4,3,3,3] beats [3,3,2,2] on utilization and variance yet is the
  // worse profile. Verify the full chain: variance/utilization say one
  // thing, the PageRank score table says the paper's thing.
  ProfileShape shape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
  const Profile a = Profile::from_levels(shape, {4, 3, 3, 3});
  const Profile b = Profile::from_levels(shape, {3, 3, 2, 2});
  EXPECT_GT(a.utilization(shape), b.utilization(shape));
  EXPECT_LT(a.variance(shape), b.variance(shape));

  std::vector<QuantizedDemand> demands = {QuantizedDemand{{{1, 1}}},
                                          QuantizedDemand{{{1, 1, 1, 1}}}};
  const ProfileGraph graph(shape, demands);
  const ScoreTable table = ScoreTable::build(graph);
  // [3,3,2,2] is reachable and can still reach the best profile; [4,3,3,3]
  // is not even reachable under the VM set (odd usage) — the score table
  // can only prefer profiles with a future. For the comparable pair of the
  // §V-A example, the ordering holds:
  const double balanced = table.score(Profile::from_levels(shape, {3, 3, 3, 3}).pack(shape));
  const double lopsided = table.score(Profile::from_levels(shape, {4, 4, 2, 2}).pack(shape));
  EXPECT_GT(balanced, lopsided);
}

}  // namespace
}  // namespace prvm
