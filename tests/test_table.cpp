#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace prvm {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.row().add("a").add(1);
  t.row().add("long-name").add(12345LL);
  const std::string s = t.str();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| a         | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 12345 |"), std::string::npos);
}

TEST(TextTable, NumericFormatting) {
  TextTable t({"x"});
  t.row().add(3.14159, 2);
  EXPECT_NE(t.str().find("3.14"), std::string::npos);
  TextTable u({"x"});
  u.row().add(3.14159, 4);
  EXPECT_NE(u.str().find("3.1416"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.row().add("x").add("y");
  t.row().add(std::size_t{7}).add(2.5, 1);
  EXPECT_EQ(t.csv(), "a,b\nx,y\n7,2.5\n");
}

TEST(TextTable, CsvRejectsCommas) {
  TextTable t({"a"});
  t.row().add("has,comma");
  EXPECT_THROW(t.csv(), std::invalid_argument);
}

TEST(TextTable, AddWithoutRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add("x"), std::invalid_argument);
}

TEST(TextTable, TooManyCellsThrows) {
  TextTable t({"a"});
  t.row().add("x");
  EXPECT_THROW(t.add("y"), std::invalid_argument);
}

TEST(TextTable, IncompleteRowDetectedOnNextRow) {
  TextTable t({"a", "b"});
  t.row().add("only-one");
  EXPECT_THROW(t.row(), std::logic_error);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, PrintWritesToStream) {
  TextTable t({"h"});
  t.row().add("v");
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.str());
}

TEST(FormatFixed, Rounds) {
  EXPECT_EQ(format_fixed(1.005, 1), "1.0");
  EXPECT_EQ(format_fixed(2.55, 1), "2.5");  // bankers-ish via iostream
  EXPECT_EQ(format_fixed(-3.14159, 3), "-3.142");
  EXPECT_EQ(format_fixed(100.0, 0), "100");
}

}  // namespace
}  // namespace prvm
