#include "cluster/datacenter.hpp"

#include <gtest/gtest.h>

namespace prvm {
namespace {

// A small catalog that keeps placements easy to reason about: PMs with 2
// cores x 4 levels + 8 memory levels; one VM type needing 2 anti-collocated
// vCPU levels and 2 memory levels.
Catalog small_catalog() {
  std::vector<VmType> vms = {{"pair", 2, 1.0, 2.0, 0, 0.0},
                             {"solo", 1, 2.0, 1.0, 0, 0.0}};
  std::vector<PmType> pms = {{"node", 2, 4.0, 8.0, 0, 0.0, "E5-2670"}};
  QuantizationConfig q;
  q.cpu_levels = 4;
  q.mem_levels = 8;
  return Catalog(std::move(vms), std::move(pms), q);
}

TEST(Datacenter, StartsEmpty) {
  Datacenter dc(small_catalog(), {0, 0, 0});
  EXPECT_EQ(dc.pm_count(), 3u);
  EXPECT_EQ(dc.used_count(), 0u);
  EXPECT_EQ(dc.unused_pms().size(), 3u);
  EXPECT_EQ(dc.vm_count(), 0u);
  for (PmIndex i = 0; i < 3; ++i) {
    EXPECT_FALSE(dc.pm(i).used());
    EXPECT_EQ(dc.pm(i).usage.total_usage(), 0);
  }
}

TEST(Datacenter, PlaceUpdatesLedger) {
  Datacenter dc(small_catalog(), {0, 0});
  const auto options = dc.placements(0, 0);
  ASSERT_FALSE(options.empty());
  dc.place(0, Vm{42, 0}, options.front());

  EXPECT_EQ(dc.used_count(), 1u);
  EXPECT_EQ(dc.used_pms(), (std::vector<PmIndex>{0}));
  EXPECT_EQ(dc.pm_of(42), std::optional<PmIndex>{0});
  EXPECT_EQ(dc.vm_count(), 1u);
  // VM "pair": 1 level on each core + 2 memory levels.
  EXPECT_EQ(dc.pm(0).usage.level(0), 1);
  EXPECT_EQ(dc.pm(0).usage.level(1), 1);
  EXPECT_EQ(dc.pm(0).usage.level(2), 2);
  // Canonical key cache is kept in sync.
  const ProfileShape& shape = dc.shape_of(0);
  EXPECT_EQ(dc.pm(0).canonical_key, dc.pm(0).usage.canonical(shape).pack(shape));
}

TEST(Datacenter, RemoveRestoresState) {
  Datacenter dc(small_catalog(), {0});
  dc.place_first_fit(0, Vm{1, 0});
  dc.place_first_fit(0, Vm{2, 1});
  const auto record = dc.remove(1);
  EXPECT_EQ(record.vm.id, 1u);
  EXPECT_EQ(dc.vm_count(), 1u);
  EXPECT_TRUE(dc.pm(0).used());
  dc.remove(2);
  EXPECT_FALSE(dc.pm(0).used());
  EXPECT_EQ(dc.used_count(), 0u);
  EXPECT_EQ(dc.pm(0).usage.total_usage(), 0);
  EXPECT_FALSE(dc.pm_of(1).has_value());
}

TEST(Datacenter, RejectsDoublePlacementOfSameVm) {
  Datacenter dc(small_catalog(), {0, 0});
  dc.place_first_fit(0, Vm{1, 0});
  EXPECT_THROW(dc.place_first_fit(1, Vm{1, 0}), std::invalid_argument);
}

TEST(Datacenter, RejectsRemoveOfUnknownVm) {
  Datacenter dc(small_catalog(), {0});
  EXPECT_THROW(dc.remove(99), std::invalid_argument);
}

TEST(Datacenter, EnforcesAntiCollocationOnExplicitPlacement) {
  Datacenter dc(small_catalog(), {0});
  const ProfileShape& shape = dc.shape_of(0);
  // Both vCPU levels of the "pair" VM on core 0: must throw.
  DemandPlacement bad{{{0, 1}, {0, 1}, {2, 2}}, Profile::zero(shape)};
  EXPECT_THROW(dc.place(0, Vm{1, 0}, bad), std::invalid_argument);
  EXPECT_FALSE(dc.pm(0).used());  // nothing half-applied
  EXPECT_EQ(dc.vm_count(), 0u);
}

TEST(Datacenter, EnforcesCapacityOnExplicitPlacement) {
  Datacenter dc(small_catalog(), {0});
  const ProfileShape& shape = dc.shape_of(0);
  DemandPlacement overflow{{{0, 5}}, Profile::zero(shape)};
  EXPECT_THROW(dc.place(0, Vm{1, 0}, overflow), std::invalid_argument);
  DemandPlacement bad_dim{{{13, 1}}, Profile::zero(shape)};
  EXPECT_THROW(dc.place(0, Vm{1, 0}, bad_dim), std::invalid_argument);
  DemandPlacement zero_amount{{{0, 0}}, Profile::zero(shape)};
  EXPECT_THROW(dc.place(0, Vm{1, 0}, zero_amount), std::invalid_argument);
}

TEST(Datacenter, FitsTracksRemainingCapacity) {
  Datacenter dc(small_catalog(), {0});
  // Memory 8 levels; "pair" takes 2 -> four of them fill memory exactly.
  for (VmId id = 0; id < 4; ++id) {
    ASSERT_TRUE(dc.fits(0, 0)) << "after " << id;
    dc.place_first_fit(0, Vm{id, 0});
  }
  EXPECT_FALSE(dc.fits(0, 0));
  EXPECT_TRUE(dc.placements(0, 0).empty());
}

TEST(Datacenter, UsedOrderIsActivationOrder) {
  Datacenter dc(small_catalog(), {0, 0, 0});
  dc.place_first_fit(2, Vm{1, 0});
  dc.place_first_fit(0, Vm{2, 0});
  EXPECT_EQ(dc.used_pms(), (std::vector<PmIndex>{2, 0}));
  dc.remove(1);
  EXPECT_EQ(dc.used_pms(), (std::vector<PmIndex>{0}));
  dc.place_first_fit(2, Vm{3, 0});
  EXPECT_EQ(dc.used_pms(), (std::vector<PmIndex>{0, 2}));
}

TEST(Datacenter, ClearResetsEverything) {
  Datacenter dc(small_catalog(), {0, 0});
  dc.place_first_fit(0, Vm{1, 0});
  dc.place_first_fit(1, Vm{2, 1});
  dc.clear();
  EXPECT_EQ(dc.used_count(), 0u);
  EXPECT_EQ(dc.vm_count(), 0u);
  for (PmIndex i = 0; i < 2; ++i) {
    EXPECT_EQ(dc.pm(i).usage.total_usage(), 0);
    EXPECT_TRUE(dc.pm(i).vms.empty());
  }
  // Usable again after clear.
  EXPECT_NO_THROW(dc.place_first_fit(0, Vm{1, 0}));
}

TEST(Datacenter, PlaceFirstFitThrowsWhenFull) {
  Datacenter dc(small_catalog(), {0});
  for (VmId id = 0; id < 4; ++id) dc.place_first_fit(0, Vm{id, 0});
  EXPECT_THROW(dc.place_first_fit(0, Vm{9, 0}), std::invalid_argument);
}

TEST(Datacenter, ValidatesConstruction) {
  EXPECT_THROW(Datacenter(small_catalog(), {}), std::invalid_argument);
  EXPECT_THROW(Datacenter(small_catalog(), {7}), std::invalid_argument);
}

TEST(Datacenter, HeterogeneousFleet) {
  // Mixed EC2 fleet: shape differs per PM.
  Datacenter dc(ec2_catalog(), {0, 1});
  EXPECT_EQ(dc.shape_of(0).total_dims(), 13);
  EXPECT_EQ(dc.shape_of(1).total_dims(), 13);
  dc.place_first_fit(0, Vm{1, 3});  // m3.2xlarge on M3
  dc.place_first_fit(1, Vm{2, 0});  // m3.medium on C3
  EXPECT_EQ(dc.used_count(), 2u);
  EXPECT_EQ(dc.pm(0).vms.size(), 1u);
  // The 2xlarge's 8 vCPUs occupy all 8 cores, one level each.
  for (int c = 0; c < 8; ++c) EXPECT_EQ(dc.pm(0).usage.level(c), 1);
}

}  // namespace
}  // namespace prvm
