#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"

namespace prvm {
namespace {

TEST(FlatMap, EmptyFindsNothing) {
  FlatMap64<int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatMap, ZeroIsAValidKey) {
  // ProfileKey 0 is the empty profile, so 0 must behave like any other key.
  FlatMap64<int> map;
  EXPECT_EQ(map.find(0), nullptr);
  map.try_emplace(0, 7);
  ASSERT_NE(map.find(0), nullptr);
  EXPECT_EQ(*map.find(0), 7);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, InsertFindUpdate) {
  FlatMap64<int> map;
  auto [first, inserted] = map.try_emplace(10, 1);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(first, 1);
  auto [again, reinserted] = map.try_emplace(10, 2);
  EXPECT_FALSE(reinserted);
  EXPECT_EQ(again, 1);  // try_emplace keeps the existing value
  again = 5;
  EXPECT_EQ(*map.find(10), 5);  // the returned reference writes through
  map[11] = 9;
  EXPECT_EQ(*map.find(11), 9);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, GrowsPastManyInsertsAndMatchesReference) {
  FlatMap64<std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    // Mix of random and dense sequential keys exercises probe chains.
    const std::uint64_t key =
        (i % 3 == 0) ? static_cast<std::uint64_t>(i / 3) : rng.engine()();
    map.try_emplace(key, key * 2 + 1);
    reference.try_emplace(key, key * 2 + 1);
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    const auto* found = map.find(key);
    ASSERT_NE(found, nullptr) << key;
    EXPECT_EQ(*found, value);
  }
  // Absent keys stay absent after all the rehashing.
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = 0x8000000000000000ULL + static_cast<std::uint64_t>(i);
    if (!reference.contains(key)) EXPECT_EQ(map.find(key), nullptr);
  }
}

TEST(FlatMap, CollidingProbeChains) {
  // Adjacent keys whose hashes land wherever they land: force a tiny table
  // so chains must wrap around.
  FlatMap64<int> map;
  for (int i = 0; i < 100; ++i) map.try_emplace(static_cast<std::uint64_t>(i), i);
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(map.find(static_cast<std::uint64_t>(i)), nullptr);
    EXPECT_EQ(*map.find(static_cast<std::uint64_t>(i)), i);
  }
  EXPECT_EQ(map.size(), 100u);
  EXPECT_EQ((map.capacity() & (map.capacity() - 1)), 0u) << "capacity must stay a power of two";
}

TEST(FlatMap, ReserveAvoidsGrowthAndClearResets) {
  FlatMap64<int> map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  for (int i = 0; i < 1000; ++i) map.try_emplace(static_cast<std::uint64_t>(i * 7919), i);
  EXPECT_EQ(map.capacity(), cap) << "reserve(1000) must absorb 1000 inserts without rehash";
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(0), nullptr);
  map.try_emplace(3, 4);
  EXPECT_EQ(*map.find(3), 4);
}

}  // namespace
}  // namespace prvm
