// Replication & failover tests (DESIGN.md §8): the WAL reader's torn-tail
// vs mid-file-corruption verdicts, leader->follower streaming over a real
// socket with ack_after_replicated, snapshot catch-up of a follower that
// joined mid-stream, promotion semantics, not_leader routing hints, and a
// follower whose disk fails mid-replication (the leader must stay healthy
// and re-converge once the follower recovers).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cluster/catalog.hpp"
#include "core/catalog_graphs.hpp"
#include "obs/metrics.hpp"
#include "service/io_env.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/socket_server.hpp"
#include "service/wal.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const ScoreTableSet> tables_for(const Catalog& catalog) {
  return std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("prvm-repl-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

Request place_request(std::uint64_t vm, std::size_t type, std::string group = "") {
  Request request;
  request.op = RequestOp::kPlace;
  request.vm_id = vm;
  request.vm_type_index = type;
  request.group = std::move(group);
  return request;
}

Request vm_request(RequestOp op, std::uint64_t vm) {
  Request request;
  request.op = op;
  request.vm_id = vm;
  return request;
}

std::string extra_of(const Response& response, const std::string& key) {
  for (const auto& [k, v] : response.extra) {
    if (k == key) return v;
  }
  return "";
}

WalRecord sample_record(std::uint64_t seq) {
  WalRecord record;
  record.type = seq % 2 == 0 ? WalRecord::Type::kPlace : WalRecord::Type::kRelease;
  record.op_seq = seq;
  record.vm = seq * 11;
  record.pm = seq * 3;
  if (seq % 3 == 0) record.group = "g" + std::to_string(seq);
  record.assignments.emplace_back(0, static_cast<int>(seq % 7) + 1);
  return record;
}

// ---------------------------------------------------------------------------
// WalReader verdicts: a torn FINAL frame is the normal kill -9 signature;
// a complete mid-file frame failing its CRC is disk damage — acknowledged
// records after it are gone, and the two must not be confused.

TEST(ReplicationWal, TornFinalFrameReportsTornTail) {
  TempDir dir("torn");
  const auto path = dir.path() / "wal.log";
  std::vector<WalRecord> written;
  {
    WalWriter writer(path);
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      written.push_back(sample_record(seq));
      writer.append(written.back());
    }
    writer.flush();
  }
  // Append half a frame, as a crash mid-write would.
  const std::string frame = encode_wal_frame(sample_record(6));
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
  }
  const WalReadResult result = read_wal_ex(path);
  EXPECT_EQ(result.records, written);
  EXPECT_EQ(result.tail, WalTailStatus::kTornTail);
  EXPECT_EQ(result.discarded_bytes, frame.size() / 2);
  EXPECT_EQ(result.valid_bytes,
            std::filesystem::file_size(path) - result.discarded_bytes);
}

TEST(ReplicationWal, MidFileCorruptionReportsCorrupt) {
  TempDir dir("corrupt");
  const auto path = dir.path() / "wal.log";
  std::vector<WalRecord> written;
  {
    WalWriter writer(path);
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      written.push_back(sample_record(seq));
      writer.append(written.back());
    }
    writer.flush();
  }
  // Flip one payload byte inside the SECOND frame: its CRC check must fail,
  // and replay must stop there even though later frames are intact.
  const std::size_t first = encode_wal_frame(sample_record(1)).size();
  {
    std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
    io.seekg(static_cast<std::streamoff>(first + 8 + 1));
    char byte = 0;
    io.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    io.seekp(static_cast<std::streamoff>(first + 8 + 1));
    io.write(&byte, 1);
  }
  const WalReadResult result = read_wal_ex(path);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0], written[0]);
  EXPECT_EQ(result.tail, WalTailStatus::kCorrupt);
  EXPECT_EQ(result.valid_bytes, first);
  EXPECT_EQ(result.discarded_bytes, std::filesystem::file_size(path) - first);
}

// ---------------------------------------------------------------------------
// Leader -> follower streaming over a real socket.

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : catalog_(ec2_catalog()), tables_(tables_for(catalog_)) {}

  /// Builds a follower service listening on `socket_path` and a leader
  /// replicating to it. Both persist under `dir`.
  void boot_pair(const TempDir& dir, const std::string& socket_path,
                 std::size_t ack_replicas, IoEnv* follower_env = nullptr) {
    std::filesystem::create_directories(dir.path() / "follower");
    std::filesystem::create_directories(dir.path() / "leader");

    ServiceConfig follower_config;
    follower_config.data_dir = dir.path() / "follower";
    follower_config.repl.follower = true;
    follower_config.repl.leader_hint = "unix:leader.sock";
    follower_config.probe_initial_ms = 20;
    follower_config.probe_max_ms = 100;
    follower_config.metrics = std::make_shared<obs::Registry>();
    if (follower_env != nullptr) {
      follower_config.io_env = std::shared_ptr<IoEnv>(follower_env, [](IoEnv*) {});
    }
    follower_ = std::make_unique<PlacementService>(
        catalog_, mixed_pm_fleet(catalog_, 40), tables_, follower_config);
    follower_->start();
    SocketServerConfig socket_config;
    socket_config.unix_path = socket_path;
    socket_config.max_frame = kMaxReplFrameBytes;
    server_ = std::make_unique<SocketServer>(*follower_, socket_config);
    server_->start();

    ServiceConfig leader_config;
    leader_config.data_dir = dir.path() / "leader";
    leader_config.repl.replicas = {"unix:" + socket_path};
    leader_config.repl.ack_replicas = ack_replicas;
    leader_config.repl.ack_timeout_ms = 5000;
    leader_config.metrics = std::make_shared<obs::Registry>();
    leader_ = std::make_unique<PlacementService>(
        catalog_, mixed_pm_fleet(catalog_, 40), tables_, leader_config);
    leader_->start();
  }

  void teardown_pair() {
    if (leader_ != nullptr) leader_->stop_now();
    if (server_ != nullptr) server_->stop();
    if (follower_ != nullptr) follower_->stop_now();
    leader_.reset();
    server_.reset();
    follower_.reset();
  }

  /// Waits until the follower's applied op_seq reaches the leader's.
  bool converged(std::chrono::seconds budget = 20s) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    const std::uint64_t target = leader_->stats().op_seq;
    while (std::chrono::steady_clock::now() < deadline) {
      if (follower_->stats().op_seq >= target) return true;
      std::this_thread::sleep_for(20ms);
    }
    return false;
  }

  Catalog catalog_;
  std::shared_ptr<const ScoreTableSet> tables_;
  std::unique_ptr<PlacementService> follower_;
  std::unique_ptr<SocketServer> server_;
  std::unique_ptr<PlacementService> leader_;
};

TEST_F(ReplicationTest, FollowerMirrorsLeaderUnderAckAfterReplicated) {
  TempDir dir("mirror");
  boot_pair(dir, (dir.path() / "f.sock").string(), /*ack_replicas=*/1);

  // With ack_replicas=1 every ack means the follower confirmed the frames,
  // so after the last .get() the follower has applied every op.
  for (std::uint64_t vm = 1; vm <= 20; ++vm) {
    const std::string group = vm % 4 == 0 ? "web" : "";
    ASSERT_TRUE(leader_->submit(place_request(vm, vm % 3, group)).get().ok);
  }
  for (std::uint64_t vm = 1; vm <= 20; vm += 5) {
    ASSERT_TRUE(leader_->submit(vm_request(RequestOp::kRelease, vm)).get().ok);
  }
  ASSERT_TRUE(converged());
  EXPECT_TRUE(datacenter_state_equal(leader_->datacenter(), follower_->datacenter()));
  EXPECT_EQ(datacenter_state_digest(leader_->datacenter()),
            datacenter_state_digest(follower_->datacenter()));

  // The follower serves reads but routes writers to the leader.
  const Response looked = follower_->submit(vm_request(RequestOp::kLookup, 2)).get();
  EXPECT_TRUE(looked.ok);
  const Response rejected = follower_->submit(place_request(999, 0)).get();
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "not_leader");
  EXPECT_EQ(extra_of(rejected, "leader"), "\"unix:leader.sock\"");

  teardown_pair();
}

TEST_F(ReplicationTest, FollowerCatchesUpFromSnapshotMidStream) {
  TempDir dir("catchup");
  const std::string socket_path = (dir.path() / "f.sock").string();
  std::filesystem::create_directories(dir.path() / "leader");

  // The leader boots first, with nobody listening at the replica endpoint,
  // and accepts best-effort traffic (ack_replicas=0: no demotions).
  ServiceConfig leader_config;
  leader_config.data_dir = dir.path() / "leader";
  leader_config.repl.replicas = {"unix:" + socket_path};
  leader_config.metrics = std::make_shared<obs::Registry>();
  leader_ = std::make_unique<PlacementService>(
      catalog_, mixed_pm_fleet(catalog_, 40), tables_, leader_config);
  leader_->start();
  for (std::uint64_t vm = 1; vm <= 15; ++vm) {
    ASSERT_TRUE(leader_->submit(place_request(vm, vm % 3)).get().ok);
  }

  // The follower appears mid-stream, behind by 15 ops: the next replicate
  // round must classify the link as needing a snapshot, install one, and
  // resume streaming live frames after it.
  std::filesystem::create_directories(dir.path() / "follower");
  ServiceConfig follower_config;
  follower_config.data_dir = dir.path() / "follower";
  follower_config.repl.follower = true;
  auto follower_registry = std::make_shared<obs::Registry>();
  follower_config.metrics = follower_registry;
  follower_ = std::make_unique<PlacementService>(
      catalog_, mixed_pm_fleet(catalog_, 40), tables_, follower_config);
  follower_->start();
  SocketServerConfig socket_config;
  socket_config.unix_path = socket_path;
  socket_config.max_frame = kMaxReplFrameBytes;
  server_ = std::make_unique<SocketServer>(*follower_, socket_config);
  server_->start();

  // Keep trickling ops: each flush retries the down link until it joins.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  std::uint64_t vm = 100;
  while (std::chrono::steady_clock::now() < deadline &&
         follower_->stats().op_seq < leader_->stats().op_seq) {
    ASSERT_TRUE(leader_->submit(place_request(vm++, 0)).get().ok);
    std::this_thread::sleep_for(50ms);
  }
  ASSERT_TRUE(converged());
  EXPECT_TRUE(datacenter_state_equal(leader_->datacenter(), follower_->datacenter()));
  EXPECT_GE(follower_registry->counter("prvm_repl_snapshots_installed_total").value(), 1u);

  teardown_pair();
}

TEST_F(ReplicationTest, PromotionFlipsRoleOnceAndOnlyOnce) {
  TempDir dir("promote");
  boot_pair(dir, (dir.path() / "f.sock").string(), /*ack_replicas=*/1);
  ASSERT_TRUE(leader_->submit(place_request(1, 0)).get().ok);
  ASSERT_TRUE(converged());

  Request promote;
  promote.op = RequestOp::kPromote;
  const Response promoted = follower_->submit(promote).get();
  ASSERT_TRUE(promoted.ok) << promoted.error;
  EXPECT_EQ(extra_of(promoted, "role"), "\"leader\"");
  EXPECT_FALSE(follower_->is_follower());

  // Double promotion is a protocol error, not an idempotent no-op: the
  // router treats not_follower as "someone beat me to it".
  const Response again = follower_->submit(promote).get();
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.error, "not_follower");

  // The promoted node accepts writes; a leader never accepts promote.
  EXPECT_TRUE(follower_->submit(place_request(50, 0)).get().ok);
  const Response on_leader = leader_->submit(promote).get();
  EXPECT_FALSE(on_leader.ok);
  EXPECT_EQ(on_leader.error, "not_follower");

  teardown_pair();
}

TEST_F(ReplicationTest, FollowerDiskFaultsDoNotPoisonTheLeader) {
  TempDir dir("faulty");
  // The follower's WAL writes fail for a bounded burst: it must degrade,
  // reject the stream, recover via its storage probe, and rejoin by
  // snapshot — while the leader stays healthy and keeps acking (best
  // effort: ack_replicas=0).
  auto faulty = io_env_from_spec("write:after=10:errno=EIO:count=3");
  boot_pair(dir, (dir.path() / "f.sock").string(), /*ack_replicas=*/0,
            faulty.get());

  const auto deadline = std::chrono::steady_clock::now() + 40s;
  std::uint64_t vm = 1;
  bool follower_degraded = false;
  while (std::chrono::steady_clock::now() < deadline && vm <= 120) {
    const Response response = leader_->submit(place_request(vm++, vm % 3)).get();
    ASSERT_TRUE(response.ok) << response.error << ": " << response.message;
    if (follower_->stats().degraded) follower_degraded = true;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(follower_degraded) << "fault schedule never fired on the follower";
  EXPECT_FALSE(leader_->stats().degraded);

  // Keep trickling until the follower has recovered and re-converged.
  const auto converge_deadline = std::chrono::steady_clock::now() + 40s;
  while (std::chrono::steady_clock::now() < converge_deadline &&
         (follower_->stats().degraded ||
          follower_->stats().op_seq < leader_->stats().op_seq)) {
    ASSERT_TRUE(leader_->submit(place_request(vm++, 0)).get().ok);
    std::this_thread::sleep_for(50ms);
  }
  ASSERT_TRUE(converged());
  EXPECT_TRUE(datacenter_state_equal(leader_->datacenter(), follower_->datacenter()));

  teardown_pair();
}

}  // namespace
}  // namespace prvm
