#include <gtest/gtest.h>

#include <sstream>

#include "trace/csv_io.hpp"
#include "trace/google_cluster.hpp"
#include "trace/planetlab.hpp"

namespace prvm {
namespace {

TEST(UtilizationTrace, ValidatesSamples) {
  EXPECT_THROW(UtilizationTrace({}), std::invalid_argument);
  EXPECT_THROW(UtilizationTrace({0.5, 1.5}), std::invalid_argument);
  EXPECT_THROW(UtilizationTrace({-0.1}), std::invalid_argument);
  EXPECT_NO_THROW(UtilizationTrace({0.0, 1.0}));
}

TEST(UtilizationTrace, WrapsAround) {
  const UtilizationTrace t({0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(t.at(0), 0.1);
  EXPECT_DOUBLE_EQ(t.at(3), 0.1);
  EXPECT_DOUBLE_EQ(t.at(7), 0.2);
  EXPECT_DOUBLE_EQ(t.mean(), 0.2);
  EXPECT_DOUBLE_EQ(t.peak(), 0.3);
}

TEST(PlanetLabGenerator, BoundsAndLength) {
  PlanetLabTraceGenerator generator;
  Rng rng(1);
  const auto trace = generator.generate(rng, 288);
  EXPECT_EQ(trace.size(), 288u);
  for (double s : trace.samples()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_THROW(generator.generate(rng, 0), std::invalid_argument);
}

TEST(PlanetLabGenerator, PopulationMeanMatchesPlanetLabProfile) {
  // The dataset's low mean utilization (~25 % with the default Beta(2,6)).
  PlanetLabTraceGenerator generator;
  Rng rng(2);
  double total = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) total += generator.generate(rng, 288).mean();
  EXPECT_NEAR(total / n, 0.25, 0.05);
}

TEST(PlanetLabGenerator, DeterministicPerSeed) {
  PlanetLabTraceGenerator generator;
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(generator.generate(a, 100).samples(), generator.generate(b, 100).samples());
}

TEST(PlanetLabGenerator, SpikesOccur) {
  PlanetLabTraceOptions options;
  options.spike_probability = 0.2;
  PlanetLabTraceGenerator generator(options);
  Rng rng(3);
  const auto trace = generator.generate(rng, 500);
  int high = 0;
  for (double s : trace.samples()) {
    if (s >= 0.7) ++high;
  }
  EXPECT_GT(high, 20);
}

TEST(GoogleGenerator, BoundsAndDiurnalCycle) {
  GoogleClusterTraceGenerator generator;
  Rng rng(4);
  const auto trace = generator.generate(rng, 576);  // two days
  for (double s : trace.samples()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  // Autocorrelation with a one-day lag should be clearly positive thanks to
  // the diurnal component (same phase one day later).
  const auto& x = trace.samples();
  double mean = trace.mean(), num = 0.0, den = 0.0;
  for (std::size_t t = 0; t < 288; ++t) {
    num += (x[t] - mean) * (x[t + 288] - mean);
  }
  for (double s : x) den += (s - mean) * (s - mean);
  EXPECT_GT(num / den, 0.1);
}

TEST(TraceSet, FromGeneratorAndPick) {
  PlanetLabTraceGenerator generator;
  Rng rng(5);
  const TraceSet set = TraceSet::from_generator(generator, rng, 10, 50);
  EXPECT_EQ(set.size(), 10u);
  Rng pick_rng(6);
  for (int i = 0; i < 20; ++i) {
    const auto& t = set.pick(pick_rng);
    EXPECT_EQ(t.size(), 50u);
  }
  EXPECT_THROW(TraceSet::from_generator(generator, rng, 0, 50), std::invalid_argument);
  EXPECT_THROW(TraceSet({}), std::invalid_argument);
}

TEST(TraceCsv, RoundTrip) {
  PlanetLabTraceGenerator generator;
  Rng rng(8);
  const TraceSet original = TraceSet::from_generator(generator, rng, 5, 20);
  std::stringstream buffer;
  save_traces_csv(buffer, original, 6);
  const TraceSet loaded = load_traces_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded.at(i).size(), original.at(i).size());
    for (std::size_t t = 0; t < original.at(i).size(); ++t) {
      EXPECT_NEAR(loaded.at(i).samples()[t], original.at(i).samples()[t], 1e-6);
    }
  }
}

TEST(TraceCsv, SkipsCommentsAndBlankLines) {
  std::stringstream in("# header\n\n0.1,0.2\n# more\n0.3,0.4\n");
  const TraceSet set = load_traces_csv(in);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.at(1).at(0), 0.3);
}

TEST(TraceCsv, RejectsMalformedInput) {
  {
    std::stringstream in("0.1,abc\n");
    EXPECT_THROW(load_traces_csv(in), std::invalid_argument);
  }
  {
    std::stringstream in("0.1,1.5\n");
    EXPECT_THROW(load_traces_csv(in), std::invalid_argument);
  }
  {
    std::stringstream in("0.1junk,0.2\n");
    EXPECT_THROW(load_traces_csv(in), std::invalid_argument);
  }
  {
    std::stringstream in("# only comments\n");
    EXPECT_THROW(load_traces_csv(in), std::invalid_argument);
  }
  EXPECT_THROW(load_traces_csv(std::filesystem::path("/nonexistent/file.csv")),
               std::invalid_argument);
}

}  // namespace
}  // namespace prvm
