#include "profile/profile.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace prvm {
namespace {

ProfileShape paper_shape() {
  // The paper's running example: capacity [4,4,4,4], one CPU group.
  return ProfileShape({DimensionGroup{ResourceKind::kCpu, 4, 4}});
}

ProfileShape ec2_like_shape() {
  // 8 cores / 1 memory / 4 disks.
  return ProfileShape({DimensionGroup{ResourceKind::kCpu, 8, 4},
                       DimensionGroup{ResourceKind::kMemory, 1, 16},
                       DimensionGroup{ResourceKind::kDisk, 4, 4}});
}

TEST(ProfileShape, BasicAccounting) {
  const ProfileShape s = ec2_like_shape();
  EXPECT_EQ(s.total_dims(), 13);
  EXPECT_EQ(s.total_capacity(), 8 * 4 + 16 + 4 * 4);
  EXPECT_EQ(s.group_offset(0), 0);
  EXPECT_EQ(s.group_offset(1), 8);
  EXPECT_EQ(s.group_offset(2), 9);
  EXPECT_EQ(s.dim_capacity(0), 4);
  EXPECT_EQ(s.dim_capacity(8), 16);
  EXPECT_EQ(s.dim_capacity(12), 4);
}

TEST(ProfileShape, KeyBitsComputed) {
  const ProfileShape s = ec2_like_shape();
  // 8 dims * 3 bits + 1 dim * 5 bits + 4 dims * 3 bits = 41.
  EXPECT_EQ(s.key_bits(), 41);
  EXPECT_EQ(s.group_bits(0), 3);
  EXPECT_EQ(s.group_bits(1), 5);
  EXPECT_EQ(s.group_bits(2), 3);
}

TEST(ProfileShape, RejectsOversizedKey) {
  // 22 dims * 3 bits = 66 bits > 64.
  EXPECT_THROW(ProfileShape({DimensionGroup{ResourceKind::kCpu, 22, 4}}),
               std::invalid_argument);
}

TEST(ProfileShape, RejectsDegenerateGroups) {
  EXPECT_THROW(ProfileShape({}), std::invalid_argument);
  EXPECT_THROW(ProfileShape({DimensionGroup{ResourceKind::kCpu, 0, 4}}),
               std::invalid_argument);
  EXPECT_THROW(ProfileShape({DimensionGroup{ResourceKind::kCpu, 4, 0}}),
               std::invalid_argument);
}

TEST(ProfileShape, EqualityComparesGroups) {
  EXPECT_TRUE(paper_shape() == paper_shape());
  EXPECT_FALSE(paper_shape() == ec2_like_shape());
}

TEST(Profile, ZeroProfile) {
  const ProfileShape s = paper_shape();
  const Profile z = Profile::zero(s);
  EXPECT_EQ(z.total_usage(), 0);
  EXPECT_DOUBLE_EQ(z.utilization(s), 0.0);
  EXPECT_TRUE(z.is_canonical(s));
  EXPECT_EQ(z.pack(s), 0u);
}

TEST(Profile, FromLevelsValidates) {
  const ProfileShape s = paper_shape();
  EXPECT_THROW(Profile::from_levels(s, {1, 2, 3}), std::invalid_argument);       // size
  EXPECT_THROW(Profile::from_levels(s, {5, 0, 0, 0}), std::invalid_argument);    // > cap
  EXPECT_THROW(Profile::from_levels(s, {-1, 0, 0, 0}), std::invalid_argument);   // < 0
  EXPECT_NO_THROW(Profile::from_levels(s, {4, 4, 4, 4}));
}

TEST(Profile, CanonicalSortsEachGroupDescending) {
  const ProfileShape s = ec2_like_shape();
  std::vector<int> levels = {0, 1, 2, 3, 4, 0, 1, 2, /*mem*/ 7, /*disks*/ 1, 3, 0, 2};
  const Profile p = Profile::from_levels(s, levels);
  EXPECT_FALSE(p.is_canonical(s));
  const Profile c = p.canonical(s);
  EXPECT_TRUE(c.is_canonical(s));
  const std::vector<int> expected = {4, 3, 2, 2, 1, 1, 0, 0, 7, 3, 2, 1, 0};
  EXPECT_EQ(std::vector<int>(c.levels().begin(), c.levels().end()), expected);
  // Canonicalization preserves total usage.
  EXPECT_EQ(c.total_usage(), p.total_usage());
}

TEST(Profile, CanonicalIsIdempotent) {
  const ProfileShape s = ec2_like_shape();
  const Profile p =
      Profile::from_levels(s, {3, 1, 4, 0, 2, 2, 0, 1, 9, 2, 0, 4, 1}).canonical(s);
  EXPECT_EQ(p.canonical(s), p);
}

TEST(Profile, PackUnpackRoundTrip) {
  const ProfileShape s = ec2_like_shape();
  const Profile p =
      Profile::from_levels(s, {4, 4, 3, 2, 1, 1, 0, 0, 13, 4, 3, 1, 0});
  ASSERT_TRUE(p.is_canonical(s));
  const ProfileKey key = p.pack(s);
  EXPECT_EQ(Profile::unpack(s, key), p);
}

TEST(Profile, PackRejectsNonCanonical) {
  const ProfileShape s = paper_shape();
  const Profile p = Profile::from_levels(s, {1, 2, 0, 0});
  EXPECT_THROW(p.pack(s), std::invalid_argument);
}

TEST(Profile, PackIsInjectiveOnDistinctProfiles) {
  const ProfileShape s = paper_shape();
  // Exhaustively pack all canonical profiles of the small shape and verify
  // key uniqueness.
  std::vector<ProfileKey> keys;
  for (int a = 0; a <= 4; ++a)
    for (int b = 0; b <= a; ++b)
      for (int c = 0; c <= b; ++c)
        for (int d = 0; d <= c; ++d)
          keys.push_back(Profile::from_levels(s, {a, b, c, d}).pack(s));
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
  EXPECT_EQ(keys.size(), 70u);  // multichoose(5,4) = C(8,4)
}

TEST(Profile, UnpackRejectsStrayBits) {
  const ProfileShape s = paper_shape();
  EXPECT_THROW(Profile::unpack(s, ~ProfileKey{0}), std::invalid_argument);
}

TEST(Profile, UtilizationAndVariance) {
  const ProfileShape s = paper_shape();
  const Profile p = Profile::from_levels(s, {4, 3, 3, 3});
  EXPECT_DOUBLE_EQ(p.utilization(s), 13.0 / 16.0);
  // Normalized levels 1, .75, .75, .75 -> variance of those.
  EXPECT_NEAR(p.variance(s), 0.01171875, 1e-12);
}

TEST(Profile, BestProfile) {
  const ProfileShape s = ec2_like_shape();
  const Profile best = best_profile(s);
  EXPECT_TRUE(best.is_best(s));
  EXPECT_DOUBLE_EQ(best.utilization(s), 1.0);
  EXPECT_FALSE(Profile::zero(s).is_best(s));
}

TEST(Profile, DescribeIsReadable) {
  const ProfileShape s = paper_shape();
  EXPECT_EQ(Profile::from_levels(s, {4, 4, 2, 2}).describe(), "[4,4,2,2]");
  EXPECT_NE(s.describe().find("4xcpu/4"), std::string::npos);
}

}  // namespace
}  // namespace prvm
