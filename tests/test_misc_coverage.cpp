// Odds and ends: error-checking macros, description helpers, and
// round-trip fuzz over randomly generated catalogs.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/score_table.hpp"
#include "placement/ffd_sum.hpp"
#include "sim/simulator.hpp"

namespace prvm {
namespace {

TEST(CheckMacros, RequireThrowsInvalidArgumentWithContext) {
  try {
    PRVM_REQUIRE(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_misc_coverage.cpp"), std::string::npos);
  }
}

TEST(CheckMacros, CheckThrowsLogicError) {
  EXPECT_THROW(PRVM_CHECK(false, "broken invariant"), std::logic_error);
  EXPECT_NO_THROW(PRVM_CHECK(true, ""));
  EXPECT_NO_THROW(PRVM_REQUIRE(true, ""));
}

TEST(Describe, EventAndMetricsStringsContainKeyFields) {
  SimEvent event{7, SimEventType::kVmMigrated, 3, 1, 5};
  const std::string text = event.describe();
  EXPECT_NE(text.find("epoch 7"), std::string::npos);
  EXPECT_NE(text.find("-> 5"), std::string::npos);

  SimMetrics metrics;
  metrics.vm_migrations = 12;
  metrics.energy_kwh = 3.5;
  const std::string m = metrics.describe();
  EXPECT_NE(m.find("migrations: 12"), std::string::npos);
  EXPECT_NE(m.find("kWh"), std::string::npos);
}

TEST(Describe, QuantizedDemandMultiGroup) {
  const QuantizedDemand demand{{{2, 1}, {}, {3}}};
  EXPECT_EQ(demand.describe(), "{2,1} {} {3}");
}

// Random-catalog fuzz: build a score table, save, load, and verify the
// loaded table answers identically for every profile and demand.
TEST(ScoreTableFuzz, SaveLoadIdentityOnRandomCatalogs) {
  Rng rng(123321);
  for (int trial = 0; trial < 8; ++trial) {
    const int dims = rng.uniform_int(1, 3);
    const int capacity = rng.uniform_int(2, 4);
    ProfileShape shape({DimensionGroup{ResourceKind::kCpu, dims, capacity}});
    std::vector<QuantizedDemand> demands;
    const int n_types = rng.uniform_int(1, 3);
    for (int t = 0; t < n_types; ++t) {
      const int items = rng.uniform_int(1, dims);
      std::vector<int> sizes;
      for (int i = 0; i < items; ++i) sizes.push_back(rng.uniform_int(1, capacity));
      std::sort(sizes.begin(), sizes.end(), std::greater<int>());
      demands.push_back(QuantizedDemand{{sizes}});
    }
    const ProfileGraph graph(shape, demands);
    const ScoreTable table = ScoreTable::build(graph);
    const auto path = std::filesystem::temp_directory_path() /
                      ("prvm-fuzz-" + std::to_string(trial) + ".bin");
    table.save(path);
    const ScoreTable loaded = ScoreTable::load(path);
    std::filesystem::remove(path);
    for (NodeId u = 0; u < graph.node_count(); ++u) {
      ASSERT_EQ(loaded.find(graph.key_of(u)), table.find(graph.key_of(u)));
      for (std::size_t t = 0; t < demands.size(); ++t) {
        const auto a = table.best_after(graph.key_of(u), t);
        const auto b = loaded.best_after(graph.key_of(u), t);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) ASSERT_EQ(a->successor, b->successor);
      }
    }
  }
}

TEST(FfdSum, PlaceAllReportsRejectedIds) {
  const Catalog catalog = geni_catalog();
  Datacenter dc(catalog, std::vector<std::size_t>(1, 0));
  FfdSum ffd;
  // Five 4-core jobs on a 16-slot instance: exactly one must be rejected.
  std::vector<Vm> vms;
  for (VmId id = 0; id < 5; ++id) vms.push_back(Vm{id, 1});
  const auto rejected = ffd.place_all(dc, vms);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_FALSE(dc.pm_of(rejected[0]).has_value());
  EXPECT_EQ(dc.vm_count(), 4u);
}

TEST(MixedFleet, AlternatesAllCatalogTypes) {
  const Catalog catalog = ec2_catalog();
  const auto fleet = mixed_pm_fleet(catalog, 7);
  EXPECT_EQ(fleet, (std::vector<std::size_t>{0, 1, 0, 1, 0, 1, 0}));
  EXPECT_THROW(mixed_pm_fleet(catalog, 0), std::invalid_argument);
}

TEST(ResourceKind, Names) {
  EXPECT_STREQ(to_string(ResourceKind::kCpu), "cpu");
  EXPECT_STREQ(to_string(ResourceKind::kMemory), "memory");
  EXPECT_STREQ(to_string(ResourceKind::kDisk), "disk");
}

}  // namespace
}  // namespace prvm
