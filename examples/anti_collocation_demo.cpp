// Anti-collocation demo (paper §I, §IV): a VM's vCPUs must land on distinct
// physical cores and its virtual disks on distinct physical disks. This
// example shows (a) the permutations the allocator considers, (b) the
// concrete core/disk assignments it makes, and (c) that the ledger rejects
// assignments violating the constraint.
#include <iostream>

#include "cluster/datacenter.hpp"

int main() {
  using namespace prvm;

  const Catalog catalog = ec2_catalog();
  Datacenter dc(catalog, {0});  // one M3: 8 cores, 64 GiB, 4 disks
  const ProfileShape& shape = dc.shape_of(0);
  std::cout << "PM: " << catalog.pm_type(0).describe() << "\n";
  std::cout << "profile shape: " << shape.describe()
            << "  (dims 0-7 cores, 8 memory, 9-12 disks)\n\n";

  // An m3.xlarge asks for 4 vCPUs and 2 virtual disks.
  const std::size_t xlarge = 2;
  std::cout << "request: " << catalog.vm_type(xlarge).describe() << "\n";
  std::cout << "quantized demand: " << catalog.demand(0, xlarge)->describe()
            << "  (per group: cores | memory | disks)\n";

  auto options = dc.placements(0, xlarge);
  std::cout << "distinct canonical outcomes on the empty PM: " << options.size() << "\n";
  dc.place(0, Vm{1, xlarge}, options.front());

  std::cout << "\nafter placing VM 1, per-dimension usage: " << dc.pm(0).usage.describe()
            << "\nassignments of VM 1 (dimension, levels):";
  for (auto [dim, amount] : dc.pm(0).vms.front().assignments) {
    std::cout << " (" << dim << "," << amount << ")";
  }
  std::cout << "\n=> 4 different cores, 2 different disks: anti-collocation held.\n";

  // Now that cores are unevenly used, a second VM has several genuinely
  // different outcomes.
  options = dc.placements(0, xlarge);
  std::cout << "\noutcomes for a second m3.xlarge on the now-loaded PM: " << options.size()
            << "\n";
  for (const auto& p : options) {
    std::cout << "  -> " << p.result.canonical(shape).describe() << "\n";
  }

  // Violating the constraint is impossible through the ledger.
  DemandPlacement bad{{{0, 1}, {0, 1}, {8, 1}, {9, 1}, {10, 1}}, Profile::zero(shape)};
  try {
    dc.place(0, Vm{2, xlarge}, bad);
    std::cout << "\nERROR: collocated placement was accepted!\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    std::cout << "\nattempting to stack two vCPUs on core 0 -> rejected:\n  " << e.what()
              << "\n";
  }
  return 0;
}
