// EC2 consolidation scenario: 600 VM requests drawn from Table I placed on
// an M3/C3 fleet by all four algorithms; compares PMs used, mean
// utilization of the active PMs, and placement latency — the paper's §VI-B
// question ("resource efficiency of VM allocation") at example scale.
#include <chrono>
#include <iostream>

#include "common/table.hpp"
#include "core/catalog_graphs.hpp"
#include "placement/algorithm_factory.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace prvm;
  using Clock = std::chrono::steady_clock;

  const Catalog catalog = ec2_sim_catalog();
  std::cout << "building/loading score tables (cached under .prvm-cache)...\n";
  auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  const std::size_t vm_count = 600;
  Rng rng(123);
  const auto vms = weighted_vm_requests(rng, catalog, vm_count, default_vm_mix(catalog));
  std::cout << vm_count << " VM requests (compute-heavy mix), fleet of " << 2 * vm_count
            << " PMs (M3/C3 alternating)\n\n";

  TextTable table({"algorithm", "PMs used", "mean CPU levels %", "mean mem levels %",
                   "placement ms", "rejected"});
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    Datacenter dc(catalog, mixed_pm_fleet(catalog, 2 * vm_count));
    auto algorithm = make_algorithm(kind, tables);
    const auto t0 = Clock::now();
    const auto rejected = algorithm->place_all(dc, vms);
    const double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    // Mean allocated fraction per resource over used PMs.
    double cpu = 0.0, mem = 0.0;
    for (PmIndex i : dc.used_pms()) {
      const auto& pm = dc.pm(i);
      const ProfileShape& shape = dc.shape_of(i);
      int cpu_used = 0, cpu_cap = 0;
      for (int c = 0; c < shape.groups()[0].count; ++c) {
        cpu_used += pm.usage.level(c);
        cpu_cap += shape.groups()[0].capacity;
      }
      cpu += static_cast<double>(cpu_used) / cpu_cap;
      const int mem_dim = shape.group_offset(1);
      mem += static_cast<double>(pm.usage.level(mem_dim)) / shape.groups()[1].capacity;
    }
    const double n = static_cast<double>(dc.used_count());
    table.row()
        .add(std::string(to_string(kind)))
        .add(dc.used_count())
        .add(100.0 * cpu / n, 1)
        .add(100.0 * mem / n, 1)
        .add(ms, 1)
        .add(rejected.size());
  }
  table.print(std::cout);
  std::cout << "\nTable I demand ratios tile the PM capacity almost perfectly, so static\n"
               "packing differences are small (FFDSum's large-first order strands the most);\n"
               "the algorithms separate under runtime dynamics — see bench_fig6/7.\n";
  return 0;
}
