// Trace-driven 24-hour simulation (the paper's §VI-A loop) at example
// scale, with the event log enabled: prints the first migrations as they
// happen and the end-of-day metrics for PageRankVM.
#include <iostream>

#include "core/catalog_graphs.hpp"
#include "harness/experiment.hpp"
#include "trace/planetlab.hpp"

int main() {
  using namespace prvm;

  const Catalog catalog = ec2_sim_catalog();
  auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  const std::size_t vm_count = 300;
  Rng rng(7);
  auto vms = weighted_vm_requests(rng, catalog, vm_count, default_vm_mix(catalog));

  // PlanetLab-like CPU traces: 288 five-minute samples.
  SimulationOptions options;
  options.record_events = true;
  const PlanetLabTraceGenerator generator;
  Rng trace_rng = rng.fork(1);
  TraceSet traces = TraceSet::from_generator(generator, trace_rng, 128, options.epochs);
  auto binding = random_trace_binding(rng, vm_count, traces.size());
  std::cout << "workload: " << vm_count << " VMs on PlanetLab-like traces (mean "
            << traces.at(0).mean() << " for trace 0)\n";

  Datacenter dc(catalog, mixed_pm_fleet(catalog, 2 * vm_count));
  auto algorithm = make_algorithm(AlgorithmKind::kPageRankVm, tables);
  auto policy = default_policy_for(AlgorithmKind::kPageRankVm, tables);

  CloudSimulation sim(std::move(dc), std::move(vms), std::move(binding), std::move(traces),
                      options);
  const SimMetrics metrics = sim.run(*algorithm, *policy);

  std::cout << "\nfirst migration events of the day:\n";
  std::size_t shown = 0;
  for (const SimEvent& event : sim.events().events()) {
    if (event.type != SimEventType::kVmMigrated) continue;
    const double hours = static_cast<double>(event.epoch) * options.epoch_seconds / 3600.0;
    std::cout << "  t=" << hours << "h  " << event.describe() << "\n";
    if (++shown == 10) break;
  }
  if (shown == 0) std::cout << "  (none — the day stayed quiet)\n";

  std::cout << "\nend of day (" << options.epochs << " epochs of " << options.epoch_seconds
            << " s):\n  " << metrics.describe() << "\n";
  std::cout << "  placement/migration compute time: " << metrics.placement_seconds << " s\n";
  return 0;
}
