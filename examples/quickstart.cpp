// Quickstart: the smallest end-to-end use of the library.
//
//   1. take a catalog (here: the paper's GENI setup — 4-core instances,
//      jobs needing 2 or 4 anti-collocated vCPUs),
//   2. build the Profile-PageRank score table (Algorithm 1),
//   3. place VMs with PageRankVM (Algorithm 2),
//   4. inspect where they landed and what the scores said.
#include <iostream>

#include "core/catalog_graphs.hpp"
#include "placement/pagerank_vm.hpp"

int main() {
  using namespace prvm;

  // 1. Catalog: PM types, VM types and the quantization grid.
  const Catalog catalog = geni_catalog();
  std::cout << "PM type: " << catalog.pm_type(0).describe() << "\n";
  for (const VmType& vm : catalog.vm_types()) std::cout << "VM type: " << vm.describe() << "\n";

  // 2. Score tables (cached on disk under .prvm-cache after the first run).
  auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));
  std::cout << "\nscore table: " << tables->table(0).size() << " profiles, PageRank "
            << (tables->table(0).pagerank_converged() ? "converged" : "NOT converged")
            << " in " << tables->table(0).pagerank_iterations() << " iterations\n";

  // 3. A datacenter of 4 instances and a handful of VM requests.
  Datacenter dc(catalog, std::vector<std::size_t>(4, 0));
  PageRankVm algorithm(tables);

  const std::vector<Vm> requests = {
      {0, 1},  // 4-vCPU job
      {1, 0},  // 2-vCPU job
      {2, 0},
      {3, 1},
      {4, 0},
  };
  std::cout << "\nplacing " << requests.size() << " VMs with " << algorithm.name() << ":\n";
  for (const Vm& vm : requests) {
    const auto pm = algorithm.place(dc, vm);
    if (!pm.has_value()) {
      std::cout << "  VM " << vm.id << ": no PM has room\n";
      continue;
    }
    const auto& state = dc.pm(*pm);
    std::cout << "  VM " << vm.id << " (" << catalog.vm_type(vm.type_index).name << ") -> PM "
              << *pm << ", PM profile now " << state.usage.describe() << " (score "
              << tables->table(0).score(state.canonical_key) << ")\n";
  }

  std::cout << "\nused PMs: " << dc.used_count() << " of " << dc.pm_count() << "\n";
  return 0;
}
