// Network-aware placement walkthrough (the paper's §VII future work): a
// three-tier tenant service placed twice — once by plain PageRankVM, once
// with the locality-blended score — and the resulting traffic paths.
#include <iostream>

#include "core/catalog_graphs.hpp"
#include "network/network_aware.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace prvm;

  const Catalog catalog = ec2_catalog();
  auto tables = std::make_shared<const ScoreTableSet>(build_score_tables(catalog));

  // 32 PMs in racks of 8.
  auto topology = std::make_shared<const LeafSpineTopology>(32, TopologyConfig{8, 1.0, 10.0});

  // A tenant's three-tier service: 2 frontends, 2 app servers, 2 databases,
  // all chatty with each other (one traffic group at 200 Mbps per pair).
  std::vector<Vm> service;
  for (VmId id = 0; id < 6; ++id) service.push_back(Vm{id, id % 3 == 2 ? 1u : 0u});
  auto traffic = std::make_shared<TrafficModel>();
  traffic->add_group({{0, 1, 2, 3, 4, 5}, 200.0});
  auto traffic_const = std::shared_ptr<const TrafficModel>(traffic);

  // Background load so the fleet is not empty: 60 ungrouped VMs.
  Rng rng(2);
  std::vector<Vm> background;
  for (VmId id = 100; id < 160; ++id) {
    background.push_back(Vm{id, rng.uniform_index(catalog.vm_types().size())});
  }

  auto run = [&](double w) {
    Datacenter dc(catalog, mixed_pm_fleet(catalog, 32));
    NetworkAwareOptions options;
    options.locality_weight_factor = w;
    NetworkAwarePageRankVm algorithm(tables, topology, traffic_const, options);
    // Service VMs arrive interleaved with background load (10 background
    // VMs between consecutive service members), as in a real datacenter.
    std::size_t b = 0;
    for (const Vm& vm : service) {
      for (std::size_t k = 0; k < 10 && b < background.size(); ++k) {
        algorithm.place(dc, background[b++]);
      }
      algorithm.place(dc, vm);
    }
    std::cout << "\nlocality weight w = " << w << ":\n";
    for (const Vm& vm : service) {
      const auto pm = dc.pm_of(vm.id);
      if (pm.has_value()) {
        std::cout << "  service VM " << vm.id << " -> PM " << *pm << " (rack "
                  << topology->rack_of(*pm) << ")\n";
      }
    }
    const auto cost = traffic_const->evaluate(dc, *topology);
    std::cout << "  traffic: " << cost.intra_pm_mbps << " Mbps intra-PM, "
              << cost.intra_rack_mbps << " Mbps intra-rack, " << cost.inter_rack_mbps
              << " Mbps inter-rack (" << 100.0 * cost.inter_rack_share()
              << "% crossing the spine)\n";
  };

  run(0.0);   // plain PageRankVM: places for packing only
  run(0.8);   // network-aware: pulls the service into one rack
  return 0;
}
